//! Modulo soft scheduling for loop pipelining.
//!
//! The paper's soft-scheduling model extends naturally to cyclic
//! behaviors once precedence edges carry an inter-iteration *distance*
//! and time is read modulo an *initiation interval* (II): threads are
//! still functional units, but a unit's occupancy wraps around — an
//! operation issued at step `t` reserves its unit at slots
//! `(t + 0..delay) mod II`, because iteration `i+1` issues the same
//! pattern `II` steps later. Precedence becomes recurrence-aware:
//! an edge `(a, b)` at distance `d` demands
//! `t(b) + II·d ≥ t(a) + D(a)` — the consumer may read the value the
//! producer computed `d` iterations earlier.
//!
//! [`ModuloScheduler`] drives the search from the certified lower bound
//! `MII = max(ResMII, RecMII)` upward:
//!
//! * **ResMII** — for every group of operations sharing a
//!   compatible-unit set, `⌈Σ delay / #units⌉` (each II window must
//!   fit the group's work), folded with the largest single delay
//!   (a non-pipelined unit cannot outlast its own next issue);
//! * **RecMII** — the smallest II at which no dependence cycle has
//!   positive weight under `w(a→b) = D(a) − II·dist(a→b)` (cycle
//!   weights are strictly decreasing in II because every cycle of a
//!   valid kernel carries positive total distance, so a binary search
//!   certifies the bound).
//!
//! Placement at a candidate II is iterative modulo scheduling in the
//! style of Rau: operations are placed highest-height first into the
//! wrap-around reservation table, a blocked operation is *forced* at
//! its earliest feasible step, and the operations it displaces
//! (resource conflicts and broken successors) re-enter the worklist —
//! bounded by an eviction budget, after which the II search moves on.
//! The feed order can also come from the paper's meta schedules over
//! the kernel DAG ([`ModuloScheduler::schedule_at_ordered`]); that is
//! what `hls_search`'s modulo portfolio races per candidate II.
//!
//! Results are validated cycle-accurately by
//! [`hls_ir::schedule::check_modulo`], which is itself cross-checked
//! against an unrolled-simulation oracle under fuzzing
//! (`crates/core/tests/modulo_differential.rs`).

use crate::SchedError;
use hls_ir::schedule::ModuloSchedule;
use hls_ir::{OpId, PrecedenceGraph, ResourceClass, ResourceSet};

/// Multiplier on `|V|` for the eviction budget of one II attempt.
const BUDGET_FACTOR: usize = 12;

/// The result of a successful [`ModuloScheduler::schedule`] run.
#[derive(Clone, Debug)]
pub struct ModuloOutcome {
    /// The legal modulo schedule (passes `check_modulo`).
    pub schedule: ModuloSchedule,
    /// The achieved initiation interval.
    pub ii: u64,
    /// The certified lower bound `max(ResMII, RecMII)` the search
    /// started from; `ii == mii` is provably throughput-optimal.
    pub mii: u64,
    /// The resource component of the bound.
    pub res_mii: u64,
    /// The recurrence component of the bound.
    pub rec_mii: u64,
    /// Single-iteration latency of the schedule (pipeline fill depth).
    pub latency: u64,
}

/// A modulo scheduler over one loop kernel and resource allocation.
///
/// Construction certifies the kernel (distance-0 subgraph acyclic,
/// every operation executable) and computes the MII components once;
/// [`ModuloScheduler::schedule`] then searches candidate IIs upward
/// from the bound.
#[derive(Clone, Debug)]
pub struct ModuloScheduler {
    g: PrecedenceGraph,
    resources: ResourceSet,
    res_mii: u64,
    rec_mii: u64,
    /// Default priority: height under the kernel's dependence
    /// structure (computed at the MII, reused for every candidate II —
    /// the relative order is what matters).
    height: Vec<u64>,
}

impl ModuloScheduler {
    /// Creates a scheduler over the loop kernel `g`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Ir`] if the distance-0 subgraph of `g` is
    /// cyclic (not a schedulable kernel) and
    /// [`SchedError::NoCompatibleUnit`] if some operation has no unit
    /// able to execute it (including the empty resource set).
    pub fn new(g: PrecedenceGraph, resources: ResourceSet) -> Result<Self, SchedError> {
        g.validate_kernel()?;
        for v in g.op_ids() {
            let kind = g.kind(v);
            if kind.resource_class() != ResourceClass::Wire
                && !(0..resources.k()).any(|u| resources.compatible(u, kind))
            {
                return Err(SchedError::NoCompatibleUnit(v, kind));
            }
        }
        let res_mii = res_mii(&g, &resources);
        let rec_mii = rec_mii(&g);
        let mii = res_mii.max(rec_mii).max(1);
        let height = heights(&g, mii);
        Ok(ModuloScheduler {
            g,
            resources,
            res_mii,
            rec_mii,
            height,
        })
    }

    /// The loop kernel.
    pub fn graph(&self) -> &PrecedenceGraph {
        &self.g
    }

    /// The functional-unit allocation.
    pub fn resources(&self) -> &ResourceSet {
        &self.resources
    }

    /// The resource-minimum initiation interval.
    pub fn res_mii(&self) -> u64 {
        self.res_mii
    }

    /// The recurrence-minimum initiation interval.
    pub fn rec_mii(&self) -> u64 {
        self.rec_mii
    }

    /// The certified lower bound `max(ResMII, RecMII, 1)`: no legal
    /// modulo schedule of this kernel under these resources has a
    /// smaller II.
    pub fn mii(&self) -> u64 {
        self.res_mii.max(self.rec_mii).max(1)
    }

    /// The largest II the search loop will try before giving up:
    /// at `MII + Σ delay` every operation fits in its own II window,
    /// so a greedy placement always succeeds earlier.
    pub fn max_ii(&self) -> u64 {
        self.mii() + self.g.total_delay() + 1
    }

    /// Attempts one candidate `ii` with the default height-first
    /// priority.
    ///
    /// # Errors
    ///
    /// [`SchedError::IiInfeasible`] if the eviction budget runs out at
    /// this II (the caller's search loop moves on).
    pub fn schedule_at(&self, ii: u64) -> Result<ModuloSchedule, SchedError> {
        self.schedule_at_budgeted(ii, &hls_ir::Budget::NONE)
    }

    /// [`ModuloScheduler::schedule_at`] under a cooperative
    /// [`hls_ir::Budget`]: the budget is checked before every placement
    /// (the modulo analogue of a commit), so the attempt stops within
    /// one placement of its deadline.
    ///
    /// # Errors
    ///
    /// [`SchedError::Timeout`] when the budget expires mid-attempt,
    /// [`SchedError::Poisoned`] if a placement panicked (caught here),
    /// otherwise as [`ModuloScheduler::schedule_at`].
    pub fn schedule_at_budgeted(
        &self,
        ii: u64,
        budget: &hls_ir::Budget,
    ) -> Result<ModuloSchedule, SchedError> {
        let mut steps = 0u64;
        self.ims_isolated(ii, &self.height, budget, &mut steps)
    }

    /// Attempts one candidate `ii` feeding operations in the priority
    /// of an explicit `order` (earlier = higher priority) — the hook
    /// for racing the paper's meta schedules (computed over
    /// [`PrecedenceGraph::kernel_dag`]) per candidate II.
    ///
    /// # Errors
    ///
    /// [`SchedError::IiInfeasible`] as for
    /// [`ModuloScheduler::schedule_at`]; [`SchedError::UnknownOp`] if
    /// the order mentions an out-of-range id.
    pub fn schedule_at_ordered(
        &self,
        ii: u64,
        order: &[OpId],
    ) -> Result<ModuloSchedule, SchedError> {
        self.schedule_at_ordered_budgeted(ii, order, &hls_ir::Budget::NONE)
    }

    /// [`ModuloScheduler::schedule_at_ordered`] under a cooperative
    /// [`hls_ir::Budget`] — see
    /// [`ModuloScheduler::schedule_at_budgeted`] for the budget and
    /// panic-isolation contract.
    ///
    /// # Errors
    ///
    /// As [`ModuloScheduler::schedule_at_ordered`], plus
    /// [`SchedError::Timeout`] and [`SchedError::Poisoned`].
    pub fn schedule_at_ordered_budgeted(
        &self,
        ii: u64,
        order: &[OpId],
        budget: &hls_ir::Budget,
    ) -> Result<ModuloSchedule, SchedError> {
        let n = self.g.len();
        let mut prio = vec![0u64; n];
        for (i, &v) in order.iter().enumerate() {
            if v.index() >= n {
                return Err(SchedError::UnknownOp(v));
            }
            prio[v.index()] = (order.len() - i) as u64;
        }
        let mut steps = 0u64;
        self.ims_isolated(ii, &prio, budget, &mut steps)
    }

    /// Searches candidate IIs upward from [`ModuloScheduler::mii`]
    /// with the default priority and returns the first success.
    ///
    /// # Errors
    ///
    /// [`SchedError::IiInfeasible`] carrying the last II tried if the
    /// whole range up to [`ModuloScheduler::max_ii`] fails (does not
    /// happen for well-formed kernels; the bound is a backstop).
    pub fn schedule(&self) -> Result<ModuloOutcome, SchedError> {
        self.schedule_budgeted(&hls_ir::Budget::NONE)
    }

    /// [`ModuloScheduler::schedule`] under a cooperative
    /// [`hls_ir::Budget`] spanning the *whole* II search: placements
    /// across all attempted IIs draw from one step quota, and the wall
    /// deadline is checked before every placement.
    ///
    /// # Errors
    ///
    /// As [`ModuloScheduler::schedule`], plus [`SchedError::Timeout`]
    /// when the budget expires and [`SchedError::Poisoned`] if a
    /// placement panicked (caught here, never unwound to the caller).
    pub fn schedule_budgeted(
        &self,
        budget: &hls_ir::Budget,
    ) -> Result<ModuloOutcome, SchedError> {
        let mii = self.mii();
        let mut steps = 0u64;
        for ii in mii..=self.max_ii() {
            match self.ims_isolated(ii, &self.height, budget, &mut steps) {
                Ok(ms) => {
                    let latency = ms.latency(&self.g);
                    return Ok(ModuloOutcome {
                        schedule: ms,
                        ii,
                        mii,
                        res_mii: self.res_mii,
                        rec_mii: self.rec_mii,
                        latency,
                    });
                }
                Err(SchedError::IiInfeasible(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(SchedError::IiInfeasible(self.max_ii()))
    }

    /// [`ModuloScheduler::ims`] under `catch_unwind`: the modulo
    /// scheduler keeps no cross-attempt state (`&self`, fresh tables
    /// per call), so a caught panic needs no poisoned flag — it just
    /// surfaces as [`SchedError::Poisoned`] and the next attempt is
    /// clean.
    fn ims_isolated(
        &self,
        ii: u64,
        prio: &[u64],
        budget: &hls_ir::Budget,
        steps: &mut u64,
    ) -> Result<ModuloSchedule, SchedError> {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.ims(ii, prio, budget, steps)
        }));
        match attempt {
            Ok(result) => result,
            Err(payload) => Err(SchedError::Poisoned(crate::panic_message(payload.as_ref()))),
        }
    }

    /// Iterative modulo scheduling at one II with the given priority
    /// vector (higher value = placed earlier; ties break on the lower
    /// op index). Deterministic. `steps` accumulates placements across
    /// calls so a multi-II search shares one budget.
    fn ims(
        &self,
        ii: u64,
        prio: &[u64],
        run_budget: &hls_ir::Budget,
        steps: &mut u64,
    ) -> Result<ModuloSchedule, SchedError> {
        if ii == 0 {
            return Err(SchedError::IiInfeasible(0));
        }
        let g = &self.g;
        let n = g.len();
        // Fail fast: a resource op outlasting the II can never be
        // placed (wrap-around self conflict), and a self recurrence
        // needs `delay ≤ II·dist` (callers probing below RecMII).
        for v in g.op_ids() {
            if g.kind(v).resource_class() != ResourceClass::Wire && g.delay(v) > ii {
                return Err(SchedError::IiInfeasible(ii));
            }
            if let Some(d) = g.dist(v, v) {
                if g.delay(v) > ii.saturating_mul(u64::from(d)) {
                    return Err(SchedError::IiInfeasible(ii));
                }
            }
        }
        let mut ms = ModuloSchedule::new(n, ii);
        // Wrap-around reservation table: `mrt[u][slot]` is the op
        // occupying unit `u` at `slot ∈ 0..ii`.
        let mut mrt: Vec<Vec<Option<OpId>>> =
            vec![vec![None; ii as usize]; self.resources.k()];
        // Last start each op was tried at — forced placements must
        // strictly advance past it so eviction cycles terminate.
        let mut prev_start: Vec<Option<u64>> = vec![None; n];
        let mut unplaced: Vec<bool> = vec![true; n];
        let mut remaining = n;
        let mut budget = n.saturating_mul(BUDGET_FACTOR).max(64);

        while remaining > 0 {
            if budget == 0 {
                return Err(SchedError::IiInfeasible(ii));
            }
            budget -= 1;
            // Cooperative cancellation + fault-injection hook: one
            // check per placement, the modulo analogue of a commit.
            hls_ir::faultinject::tick_commit();
            if run_budget.expired(*steps) {
                return Err(SchedError::Timeout);
            }
            *steps += 1;
            // Highest priority unscheduled op; ties to the lowest id.
            let v = (0..n)
                .filter(|&i| unplaced[i])
                .max_by_key(|&i| (prio[i], std::cmp::Reverse(i)))
                .map(OpId::from_index)
                .expect("remaining > 0");
            let estart = self.early_start(&ms, v, ii);
            let kind = g.kind(v);
            if kind.resource_class() == ResourceClass::Wire {
                // Zero-resource ops never conflict; place at the
                // earliest legal step.
                self.place(&mut ms, &mut mrt, &mut unplaced, &mut remaining, v, estart, None);
                prev_start[v.index()] = Some(estart);
                continue;
            }
            // Scan the II window for a conflict-free (step, unit).
            let delay = g.delay(v);
            let mut choice: Option<(u64, usize)> = None;
            'scan: for t in estart..estart + ii {
                for (u, row) in mrt.iter().enumerate() {
                    if !self.resources.compatible(u, kind) {
                        continue;
                    }
                    if delay == 0 || Self::slots_free(row, t, delay, ii) {
                        choice = Some((t, u));
                        break 'scan;
                    }
                }
            }
            let (t, u) = match choice {
                Some(c) => c,
                None => {
                    // Forced placement: earliest step strictly past the
                    // previous attempt, on the first compatible unit;
                    // whatever occupies it is displaced.
                    let t = match prev_start[v.index()] {
                        Some(p) => estart.max(p + 1),
                        None => estart,
                    };
                    let u = (0..self.resources.k())
                        .find(|&u| self.resources.compatible(u, kind))
                        .expect("checked at construction");
                    (t, u)
                }
            };
            self.place(&mut ms, &mut mrt, &mut unplaced, &mut remaining, v, t, Some(u));
            prev_start[v.index()] = Some(t);
        }
        debug_assert_eq!(
            hls_ir::schedule::check_modulo(g, &self.resources, &ms),
            Ok(())
        );
        Ok(ms)
    }

    /// Earliest start of `v` honouring every *placed* predecessor:
    /// `max(0, t(p) + D(p) − II·dist)` over edges `(p, v)`.
    fn early_start(&self, ms: &ModuloSchedule, v: OpId, ii: u64) -> u64 {
        let g = &self.g;
        let mut e = 0u64;
        for &p in g.preds(v) {
            if p == v {
                continue; // self recurrence constrains nothing at ≥ RecMII
            }
            let Some(ps) = ms.start(p) else { continue };
            let d = g.dist(p, v).expect("pred implies edge");
            let need = (ps + g.delay(p)).saturating_sub(ii * u64::from(d));
            e = e.max(need);
        }
        e
    }

    /// `true` if unit slots `(t + 0..delay) mod ii` are all free.
    fn slots_free(row: &[Option<OpId>], t: u64, delay: u64, ii: u64) -> bool {
        (0..delay).all(|off| row[((t + off) % ii) as usize].is_none())
    }

    /// Places `v` at `(t, unit)`, displacing resource conflicts and any
    /// scheduled dependent whose recurrence constraint the placement
    /// breaks (they re-enter the worklist).
    #[allow(clippy::too_many_arguments)]
    fn place(
        &self,
        ms: &mut ModuloSchedule,
        mrt: &mut [Vec<Option<OpId>>],
        unplaced: &mut [bool],
        remaining: &mut usize,
        v: OpId,
        t: u64,
        unit: Option<usize>,
    ) {
        let g = &self.g;
        let ii = ms.ii();
        let delay = g.delay(v);
        // Displace resource conflicts on the chosen unit.
        if let Some(u) = unit {
            if delay > 0 {
                for off in 0..delay {
                    let slot = ((t + off) % ii) as usize;
                    if let Some(w) = mrt[u][slot] {
                        if w != v {
                            self.evict(ms, mrt, unplaced, remaining, w);
                        }
                    }
                }
                for off in 0..delay {
                    mrt[u][((t + off) % ii) as usize] = Some(v);
                }
            }
        }
        ms.assign(v, t, unit);
        if unplaced[v.index()] {
            unplaced[v.index()] = false;
            *remaining -= 1;
        }
        // Displace scheduled successors whose constraint now breaks.
        let succs: Vec<OpId> = g.succs(v).to_vec();
        for q in succs {
            if q == v {
                continue;
            }
            let Some(qs) = ms.start(q) else { continue };
            let d = g.dist(v, q).expect("succ implies edge");
            if qs + ii * u64::from(d) < t + delay {
                self.evict(ms, mrt, unplaced, remaining, q);
            }
        }
    }

    /// Removes `w` from the schedule and reservation table.
    fn evict(
        &self,
        ms: &mut ModuloSchedule,
        mrt: &mut [Vec<Option<OpId>>],
        unplaced: &mut [bool],
        remaining: &mut usize,
        w: OpId,
    ) {
        if let Some(u) = ms.unit(w) {
            for slot in mrt[u].iter_mut() {
                if *slot == Some(w) {
                    *slot = None;
                }
            }
        }
        ms.unassign(w);
        if !unplaced[w.index()] {
            unplaced[w.index()] = true;
            *remaining += 1;
        }
    }
}

/// The resource-minimum II: for every distinct compatible-unit set,
/// `⌈Σ delay / #units⌉`, folded with the largest single resource-op
/// delay (a non-pipelined unit is busy `delay` slots out of every II).
pub fn res_mii(g: &PrecedenceGraph, resources: &ResourceSet) -> u64 {
    let mut groups: Vec<(Vec<usize>, u64)> = Vec::new();
    let mut floor = 0u64;
    for v in g.op_ids() {
        let kind = g.kind(v);
        if kind.resource_class() == ResourceClass::Wire {
            continue;
        }
        let units = resources.compatible_units(kind);
        if units.is_empty() {
            continue; // construction rejects this; keep the bound sane
        }
        floor = floor.max(g.delay(v));
        match groups.iter_mut().find(|(u, _)| *u == units) {
            Some((_, w)) => *w += g.delay(v),
            None => groups.push((units, g.delay(v))),
        }
    }
    for (units, work) in groups {
        floor = floor.max(work.div_ceil(units.len() as u64));
    }
    floor
}

/// The recurrence-minimum II: the smallest `II ≥ 1` under which no
/// dependence cycle has positive weight `Σ D(a) − II·Σ dist` —
/// certified by binary search (cycle weights strictly decrease in II
/// on valid kernels, whose every cycle carries positive distance).
/// Returns 1 for plain DAGs.
pub fn rec_mii(g: &PrecedenceGraph) -> u64 {
    if !g.has_loop_edges() {
        return 1;
    }
    // At II = Σ delay any cycle weight is ≤ Σ_cycle delay − II < 0.
    let mut lo = 1u64;
    let mut hi = g.total_delay().max(1);
    if has_positive_cycle(g, hi) {
        // Degenerate kernels (all-zero delays never trip this).
        return hi;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(g, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Bellman-Ford positive-cycle probe on weights `D(a) − II·dist`.
fn has_positive_cycle(g: &PrecedenceGraph, ii: u64) -> bool {
    let n = g.len();
    let mut label = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for (a, b, d) in g.edges_dist() {
            let w = g.delay(a) as i64 - (ii as i64) * i64::from(d);
            let cand = label[a.index()].saturating_add(w);
            if cand > label[b.index()] {
                label[b.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n {
            return true;
        }
    }
    false
}

/// Height priority at interval `ii` — Rau's `HeightR`:
/// `H(v) = D(v) + max(0, max_{(v,q,d)} H(q) − ii·d)`, the delay-sum of
/// the longest dependence chain out of `v` discounted by `ii` per
/// iteration crossed. Ops feeding long chains place first. Fixpoint
/// iteration (converges at `ii ≥ RecMII`, where no positive cycles
/// remain).
fn heights(g: &PrecedenceGraph, ii: u64) -> Vec<u64> {
    let n = g.len();
    let mut h: Vec<i64> = g.op_ids().map(|v| g.delay(v) as i64).collect();
    for _ in 0..=n {
        let mut changed = false;
        for (a, b, d) in g.edges_dist() {
            let tail = h[b.index()].saturating_sub((ii as i64) * i64::from(d)).max(0);
            let cand = (g.delay(a) as i64).saturating_add(tail);
            if cand > h[a.index()] {
                h[a.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    h.into_iter().map(|x| x.max(0) as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::schedule::check_modulo;
    use hls_ir::{bench_graphs, OpKind};

    #[test]
    fn modulo_budget_times_out_as_a_typed_error() {
        let g = bench_graphs::mac_loop();
        let r = ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 1);
        let sched = ModuloScheduler::new(g, r).unwrap();
        // Zero placements allowed: the very first placement check fails.
        let err = sched.schedule_budgeted(&hls_ir::Budget::steps(0)).unwrap_err();
        assert!(matches!(err, SchedError::Timeout), "{err}");
        // A generous quota completes normally.
        let out = sched.schedule_budgeted(&hls_ir::Budget::steps(100_000)).unwrap();
        assert_eq!(out.ii, 2);
    }

    #[test]
    fn modulo_placement_panic_is_caught_as_poisoned() {
        let _armed = hls_ir::faultinject::arm(
            hls_ir::faultinject::FaultPlan::panic_at(2).in_run("modulo-victim"),
        );
        let _scope = hls_ir::faultinject::RunScope::enter("modulo-victim");
        let g = bench_graphs::mac_loop();
        let r = ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 1);
        let sched = ModuloScheduler::new(g, r).unwrap();
        let err = sched.schedule().unwrap_err();
        assert!(matches!(err, SchedError::Poisoned(_)), "{err}");
    }

    #[test]
    fn mac_loop_pipelines_at_the_memory_bound() {
        let g = bench_graphs::mac_loop();
        // 1 ALU, 1 MUL, 1 memory port: two loads per iteration on one
        // port force II = 2.
        let r = ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 1);
        let sched = ModuloScheduler::new(g.clone(), r.clone()).unwrap();
        assert_eq!(sched.res_mii(), 2);
        assert_eq!(sched.rec_mii(), 1);
        let out = sched.schedule().unwrap();
        assert_eq!(out.ii, 2, "achieves the certified MII");
        assert_eq!(check_modulo(&g, &r, &out.schedule), Ok(()));
        // Two ports halve the II.
        let r2 = ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 2);
        let out2 = ModuloScheduler::new(g.clone(), r2.clone())
            .unwrap()
            .schedule()
            .unwrap();
        assert_eq!(out2.ii, 2, "mul delay 2 holds the floor");
        assert_eq!(check_modulo(&g, &r2, &out2.schedule), Ok(()));
    }

    #[test]
    fn biquad_is_recurrence_bound() {
        let g = bench_graphs::iir_biquad();
        // 3 multipliers: the 5 two-cycle products pack 2+2+1 into the
        // 5-slot wrap-around windows, so the recurrence bound is met.
        let r = ResourceSet::classic(2, 3).with(ResourceClass::MemPort, 1);
        let sched = ModuloScheduler::new(g.clone(), r.clone()).unwrap();
        // y → y1(move 1) → a1y1(mul 2) → fb1(sub 1) → y(sub 1): Σ = 5,
        // distance 1.
        assert_eq!(sched.rec_mii(), 5);
        let out = sched.schedule().unwrap();
        assert_eq!(out.ii, 5);
        assert_eq!(check_modulo(&g, &r, &out.schedule), Ok(()));
    }

    #[test]
    fn biquad_at_two_multipliers_shows_the_fragmentation_gap() {
        // ResMII = ⌈10/2⌉ = 5 ties RecMII = 5, but five 2-cycle
        // multiplies cannot tile 2 units × 5 wrap-around slots (each
        // unit fits at most two whole delay-2 intervals mod 5), so the
        // true optimum is II = 6: MII is a lower bound, not a promise.
        let g = bench_graphs::iir_biquad();
        let r = ResourceSet::classic(2, 2).with(ResourceClass::MemPort, 1);
        let sched = ModuloScheduler::new(g.clone(), r.clone()).unwrap();
        assert_eq!(sched.mii(), 5);
        let out = sched.schedule().unwrap();
        assert_eq!(out.ii, 6);
        assert_eq!(check_modulo(&g, &r, &out.schedule), Ok(()));
    }

    #[test]
    fn gcd_recurrence_sets_ii_two() {
        let g = bench_graphs::gcd_loop();
        let r = ResourceSet::classic(1, 0);
        let sched = ModuloScheduler::new(g.clone(), r.clone()).unwrap();
        assert_eq!(sched.rec_mii(), 2, "a' = a − b through the move");
        let out = sched.schedule().unwrap();
        assert_eq!(out.ii, 2);
        assert_eq!(check_modulo(&g, &r, &out.schedule), Ok(()));
    }

    #[test]
    fn fir_loop_is_resource_bound() {
        let g = bench_graphs::fir_loop(8);
        let r = ResourceSet::classic(1, 2).with(ResourceClass::MemPort, 1);
        let sched = ModuloScheduler::new(g.clone(), r.clone()).unwrap();
        // 8 muls of delay 2 on 2 multipliers: ResMII 8.
        assert_eq!(sched.res_mii(), 8);
        assert_eq!(sched.rec_mii(), 1);
        let out = sched.schedule().unwrap();
        assert_eq!(out.ii, 8);
        assert_eq!(check_modulo(&g, &r, &out.schedule), Ok(()));
    }

    #[test]
    fn acyclic_graphs_pipeline_too() {
        // A plain DAG is a kernel with no recurrences: II is purely
        // resource-bound.
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 2);
        let sched = ModuloScheduler::new(g.clone(), r.clone()).unwrap();
        assert_eq!(sched.rec_mii(), 1);
        let out = sched.schedule().unwrap();
        assert_eq!(out.ii, sched.mii());
        assert_eq!(check_modulo(&g, &r, &out.schedule), Ok(()));
    }

    #[test]
    fn ordered_scheduling_honours_the_meta_order_hook() {
        let g = bench_graphs::mac_loop();
        let r = ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 1);
        let sched = ModuloScheduler::new(g.clone(), r.clone()).unwrap();
        let order: Vec<OpId> = g.op_ids().collect();
        let ms = sched.schedule_at_ordered(sched.mii(), &order).unwrap();
        assert_eq!(check_modulo(&g, &r, &ms), Ok(()));
        let bogus = [OpId::from_index(99)];
        assert!(matches!(
            sched.schedule_at_ordered(2, &bogus),
            Err(SchedError::UnknownOp(_))
        ));
    }

    #[test]
    fn infeasible_ii_reports_not_panics() {
        let g = bench_graphs::mac_loop();
        let r = ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 1);
        let sched = ModuloScheduler::new(g, r).unwrap();
        // II below the memory bound cannot fit two loads.
        assert!(matches!(
            sched.schedule_at(1),
            Err(SchedError::IiInfeasible(1))
        ));
    }

    #[test]
    fn construction_rejects_bad_kernels_and_allocations() {
        // Distance-0 cycle: not a kernel.
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, b).unwrap();
        g.add_edge(b, a).unwrap();
        assert!(matches!(
            ModuloScheduler::new(g, ResourceSet::uniform(1)),
            Err(SchedError::Ir(hls_ir::IrError::Cycle(_)))
        ));
        // Missing unit class.
        let g2 = bench_graphs::mac_loop();
        assert!(matches!(
            ModuloScheduler::new(g2.clone(), ResourceSet::classic(1, 1)),
            Err(SchedError::NoCompatibleUnit(_, OpKind::Load))
        ));
        // Empty resource set.
        assert!(matches!(
            ModuloScheduler::new(g2, ResourceSet::new()),
            Err(SchedError::NoCompatibleUnit(_, _))
        ));
    }

    #[test]
    fn schedule_is_deterministic() {
        for (name, g) in bench_graphs::loops() {
            let r = ResourceSet::classic(2, 1).with(ResourceClass::MemPort, 1);
            let s1 = ModuloScheduler::new(g.clone(), r.clone()).unwrap().schedule().unwrap();
            let s2 = ModuloScheduler::new(g, r).unwrap().schedule().unwrap();
            assert_eq!(s1.ii, s2.ii, "{name}");
            assert_eq!(s1.schedule, s2.schedule, "{name}");
        }
    }
}
