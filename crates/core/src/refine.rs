//! Schedule refinement — the payoff of soft scheduling (Section 1,
//! Figure 1 of the paper).
//!
//! After later design phases discover new operations — spill code from
//! register allocation, register moves from SSA φ resolution, wire
//! delays from physical design — a *soft* schedule absorbs them by
//! scheduling the new vertices into the existing partial order
//! ([`insert_spill`], [`insert_wire_delay`], [`resolve_phi_to_move`]).
//!
//! For comparison this module also implements the "trivial fix" the
//! paper attributes to hard schedulers (Figures 1(c)/(d)): keep every
//! operation at its fixed step and open new time steps for the inserted
//! ones ([`patch_hard_splice`]), which always pays the full inserted
//! delay.

use crate::{SchedError, ThreadedScheduler};
use hls_ir::{HardSchedule, OpId, OpKind, PrecedenceGraph, ResourceClass, ResourceSet};

/// Inserts a spill of the value `producer -> consumer` (a `Store` and a
/// `Load`, one step each by default) into both the behavior and the soft
/// schedule. Returns `(store, load)`.
///
/// The resource set must contain a memory port
/// ([`ResourceClass::MemPort`]) for the spill operations to execute on.
///
/// # Errors
///
/// Returns [`SchedError::Ir`] if `producer -> consumer` is not an edge
/// and [`SchedError::NoCompatibleUnit`] if there is no memory port.
pub fn insert_spill(
    ts: &mut ThreadedScheduler,
    producer: OpId,
    consumer: OpId,
) -> Result<(OpId, OpId), SchedError> {
    let label_st = format!("st({})", ts.graph().label(producer));
    let label_ld = format!("ld({})", ts.graph().label(producer));
    let inserted = ts.refine_splice(
        producer,
        consumer,
        [(OpKind::Store, 1, label_st), (OpKind::Load, 1, label_ld)],
    )?;
    Ok((inserted[0], inserted[1]))
}

/// Inserts a wire-delay vertex of the given delay on the edge
/// `from -> to` (the Figure 1(d) scenario) into both the behavior and
/// the soft schedule. Returns the new vertex.
///
/// # Errors
///
/// Returns [`SchedError::Ir`] if `from -> to` is not an edge.
pub fn insert_wire_delay(
    ts: &mut ThreadedScheduler,
    from: OpId,
    to: OpId,
    delay: u64,
) -> Result<OpId, SchedError> {
    let label = format!("wd({}->{})", ts.graph().label(from), ts.graph().label(to));
    let inserted = ts.refine_splice(from, to, [(OpKind::WireDelay, delay, label)])?;
    Ok(inserted[0])
}

/// Resolves an SSA φ operation to a register move *after* scheduling —
/// the paper's Section 1 example of a decision only register allocation
/// can make. The φ must be scheduled already; its delay changes from 0
/// to the move delay and the state is relabelled via a fresh ECO vertex.
///
/// Returns the move operation (the φ itself, retyped) — callers keep
/// using the same id.
///
/// # Errors
///
/// Returns [`SchedError::NotScheduled`] if the φ is not in the state.
pub fn resolve_phi_to_move(
    ts: &mut ThreadedScheduler,
    phi: OpId,
    move_delay: u64,
) -> Result<OpId, SchedError> {
    if !ts.is_scheduled(phi) {
        return Err(SchedError::NotScheduled(phi));
    }
    ts.retype_op(phi, OpKind::Move, move_delay);
    Ok(phi)
}

/// Outcome of patching a *hard* schedule by the trivial fix.
#[derive(Clone, Debug)]
pub struct PatchedHard {
    /// The modified behavior (with the inserted operations).
    pub graph: PrecedenceGraph,
    /// The patched schedule.
    pub schedule: HardSchedule,
    /// Ids of the inserted operations.
    pub inserted: Vec<OpId>,
}

/// The paper's Figure 1(c)/(d) "trivial fix" of a hard schedule: splice
/// `chain` onto the edge `from -> to` of `g`, open `Σ delay` fresh time
/// steps at `start(to)` by shifting every operation at or below it, and
/// place the chain into the gap.
///
/// Resource-consuming inserted operations are bound greedily to a
/// compatible unit that is free in the gap.
///
/// # Errors
///
/// Returns [`SchedError::Ir`] if `from -> to` is not an edge,
/// [`SchedError::NotScheduled`] if either endpoint is unscheduled, and
/// [`SchedError::NoCompatibleUnit`] if an inserted operation cannot be
/// bound.
pub fn patch_hard_splice(
    g: &PrecedenceGraph,
    sched: &HardSchedule,
    resources: &ResourceSet,
    from: OpId,
    to: OpId,
    chain: impl IntoIterator<Item = (OpKind, u64, String)>,
) -> Result<PatchedHard, SchedError> {
    let mut graph = g.clone();
    let at = sched.start(to).ok_or(SchedError::NotScheduled(to))?;
    if sched.start(from).is_none() {
        return Err(SchedError::NotScheduled(from));
    }
    let inserted = graph.splice_on_edge(from, to, chain)?;
    let extra: u64 = inserted.iter().map(|&v| graph.delay(v)).sum();

    let mut schedule = sched.clone();
    schedule.grow(graph.len());
    schedule.shift_from(at, extra);

    // Fill the gap sequentially, binding each inserted op to a unit that
    // is idle during its slot.
    let mut t = at;
    for &v in &inserted {
        let kind = graph.kind(v);
        let unit = if kind.resource_class() == ResourceClass::Wire {
            None
        } else {
            let slot_end = t + graph.delay(v);
            let free = resources.compatible_units(kind).into_iter().find(|&u| {
                graph.op_ids().all(|w| {
                    schedule.unit(w) != Some(u)
                        || schedule
                            .start(w)
                            .is_none_or(|s| s >= slot_end || s + graph.delay(w) <= t)
                })
            });
            Some(free.ok_or(SchedError::NoCompatibleUnit(v, kind))?)
        };
        schedule.assign(v, t, unit);
        t += graph.delay(v);
    }
    Ok(PatchedHard {
        graph,
        schedule,
        inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{bench_graphs, schedule as sched_check, ResourceClass};

    /// Builds the Figure 1(e) soft schedule (threads {3,4,6,7} / {1,2,5})
    /// with a memory port available for spills.
    fn fig1_soft() -> (ThreadedScheduler, [OpId; 7]) {
        let f = bench_graphs::fig1();
        let r = ResourceSet::uniform(2).with(ResourceClass::MemPort, 1);
        let mut ts = ThreadedScheduler::new(f.graph, r).unwrap();
        for (op, thread) in [
            (f.v[2], 0),
            (f.v[3], 0),
            (f.v[5], 0),
            (f.v[6], 0),
            (f.v[0], 1),
            (f.v[1], 1),
            (f.v[4], 1),
        ] {
            let placements = ts.feasible_placements(op).unwrap();
            let p = placements
                .iter()
                .copied()
                .rfind(|p| p.thread == thread)
                .unwrap();
            ts.commit(p, op);
        }
        (ts, f.v)
    }

    #[test]
    fn figure1_spill_soft_vs_hard_patch() {
        // Soft: 5 -> 6 states (paper). Hard trivial fix: 5 -> 7 states.
        let (mut ts, v) = fig1_soft();
        assert_eq!(ts.diameter(), 5);
        let before_hard = ts.extract_hard();
        let g_before = ts.graph().clone();

        let (st, ld) = insert_spill(&mut ts, v[2], v[3]).unwrap();
        assert_eq!(ts.graph().kind(st), OpKind::Store);
        assert_eq!(ts.graph().kind(ld), OpKind::Load);
        assert_eq!(ts.diameter(), 6, "soft refinement absorbs one step");
        ts.check_invariants().unwrap();
        let refined = ts.extract_hard();
        sched_check::validate(ts.graph(), ts.resources(), &refined).unwrap();

        let patched = patch_hard_splice(
            &g_before,
            &before_hard,
            ts.resources(),
            v[2],
            v[3],
            [
                (OpKind::Store, 1, "st".to_string()),
                (OpKind::Load, 1, "ld".to_string()),
            ],
        )
        .unwrap();
        sched_check::validate(&patched.graph, ts.resources(), &patched.schedule).unwrap();
        assert_eq!(
            patched.schedule.length(&patched.graph),
            7,
            "the trivial fix pays the full two steps"
        );
    }

    #[test]
    fn figure1_wire_delay_is_absorbed_for_free() {
        // Paper: the wire-delay refinement still yields a 5-state
        // schedule — vertex 3's slack absorbs it entirely.
        let (mut ts, v) = fig1_soft();
        let wd = insert_wire_delay(&mut ts, v[2], v[3], 1).unwrap();
        assert_eq!(ts.graph().kind(wd), OpKind::WireDelay);
        assert_eq!(ts.diameter(), 5, "paper: wire delay absorbed, still 5 states");
        ts.check_invariants().unwrap();
        let hard = ts.extract_hard();
        sched_check::validate(ts.graph(), ts.resources(), &hard).unwrap();
    }

    #[test]
    fn hard_patch_of_wire_delay_pays_a_step() {
        let (ts, v) = fig1_soft();
        let patched = patch_hard_splice(
            ts.graph(),
            &ts.extract_hard(),
            ts.resources(),
            v[2],
            v[3],
            [(OpKind::WireDelay, 1, "wd".to_string())],
        )
        .unwrap();
        assert_eq!(patched.schedule.length(&patched.graph), 6);
        sched_check::validate(&patched.graph, ts.resources(), &patched.schedule).unwrap();
    }

    #[test]
    fn spill_needs_a_memory_port() {
        // Typed ALUs cannot run Store/Load; without a MemPort the spill
        // must be rejected. (Uniform units would accept it.)
        let f = bench_graphs::fig1();
        let mut ts = ThreadedScheduler::new(f.graph, ResourceSet::classic(2, 0)).unwrap();
        ts.schedule_all(f.v).unwrap();
        assert!(matches!(
            insert_spill(&mut ts, f.v[2], f.v[3]),
            Err(SchedError::NoCompatibleUnit(_, OpKind::Store))
        ));
    }

    #[test]
    fn phi_resolution_retypes_in_place() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let phi = g.add_op(OpKind::Phi, 0, "phi");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, phi).unwrap();
        g.add_edge(phi, b).unwrap();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(1)).unwrap();
        ts.schedule_all([a, phi, b]).unwrap();
        assert_eq!(ts.diameter(), 2, "free phi costs nothing");
        resolve_phi_to_move(&mut ts, phi, 1).unwrap();
        assert_eq!(ts.graph().kind(phi), OpKind::Move);
        assert_eq!(ts.diameter(), 3, "the move now takes a step");
        ts.check_invariants().unwrap();
    }

    #[test]
    fn phi_resolution_requires_scheduled_phi() {
        let mut g = PrecedenceGraph::new();
        let phi = g.add_op(OpKind::Phi, 0, "phi");
        let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(1)).unwrap();
        assert_eq!(
            resolve_phi_to_move(&mut ts, phi, 1),
            Err(SchedError::NotScheduled(phi))
        );
    }

    #[test]
    fn patch_rejects_unscheduled_endpoints() {
        let f = bench_graphs::fig1();
        let sched = HardSchedule::new(f.graph.len());
        let err = patch_hard_splice(
            &f.graph,
            &sched,
            &ResourceSet::uniform(2),
            f.v[2],
            f.v[3],
            [(OpKind::WireDelay, 1, "wd".to_string())],
        );
        assert!(matches!(err, Err(SchedError::NotScheduled(_))));
    }
}
