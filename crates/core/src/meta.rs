//! Meta schedules (Section 5 of the paper).
//!
//! A procedural schedule is a pair of meta schedule and online schedule
//! (Definition 2). The meta schedule only chooses the *order* in which
//! operations are fed to the online scheduler; the paper evaluates four:
//!
//! 1. depth-first order of the precedence graph,
//! 2. a topological order,
//! 3. a longest-path partition, paths fed longest first,
//! 4. the order in which a list scheduler would issue the operations.
//!
//! [`MetaSchedule::Random`] adds seeded random permutations for the
//! meta-sensitivity ablation (not part of the paper's table).

use crate::SchedError;
use hls_ir::{algo, OpId, PrecedenceGraph, ResourceSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An operation ordering policy for feeding the online scheduler.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MetaSchedule {
    /// Meta schedule 1: depth-first traversal of the precedence graph.
    Dfs,
    /// Meta schedule 2: a topological order.
    Topological,
    /// Meta schedule 3: longest-path partition, longest paths first.
    PathBased,
    /// Meta schedule 4: list-scheduling issue order (needs the resource
    /// set).
    ListBased,
    /// A seeded random permutation (ablation and portfolio
    /// perturbations; may be non-topological).
    Random(u64),
    /// A seeded random *topological* order: Kahn's algorithm with a
    /// shuffled ready set. Unlike [`MetaSchedule::Random`] every
    /// prefix respects the precedence edges, so these perturbations
    /// explore the tie-break space of the deterministic metas without
    /// paying the serialisation penalty of feeding descendants first —
    /// the portfolio's second perturbation population.
    RandomTopo(u64),
}

impl MetaSchedule {
    /// The four meta schedules evaluated in the paper's Figure 3, in row
    /// order.
    pub const PAPER: [MetaSchedule; 4] = [
        MetaSchedule::Dfs,
        MetaSchedule::Topological,
        MetaSchedule::PathBased,
        MetaSchedule::ListBased,
    ];

    /// The name used in reports (matching the paper's table rows).
    pub fn name(self) -> &'static str {
        match self {
            MetaSchedule::Dfs => "meta sched1",
            MetaSchedule::Topological => "meta sched2",
            MetaSchedule::PathBased => "meta sched3",
            MetaSchedule::ListBased => "meta sched4",
            MetaSchedule::Random(_) => "meta random",
            MetaSchedule::RandomTopo(_) => "meta random-topo",
        }
    }

    /// Computes the operation order for `g`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Ir`] for cyclic graphs and
    /// [`SchedError::Baseline`] if the list scheduler behind
    /// [`MetaSchedule::ListBased`] fails (e.g. missing unit classes).
    pub fn order(
        self,
        g: &PrecedenceGraph,
        resources: &ResourceSet,
    ) -> Result<Vec<OpId>, SchedError> {
        g.validate()?;
        let order = match self {
            MetaSchedule::Dfs => algo::dfs_order(g),
            MetaSchedule::Topological => algo::topo_order(g)?,
            MetaSchedule::PathBased => algo::longest_path_partition(g)
                .into_iter()
                .flatten()
                .collect(),
            MetaSchedule::ListBased => {
                hls_baselines::list_schedule(g, resources, hls_baselines::Priority::CriticalPath)
                    .map_err(|e| SchedError::Baseline(e.to_string()))?
                    .order
            }
            MetaSchedule::Random(seed) => {
                let mut order: Vec<OpId> = g.op_ids().collect();
                order.shuffle(&mut StdRng::seed_from_u64(seed));
                order
            }
            MetaSchedule::RandomTopo(seed) => {
                // Kahn with a uniformly random ready pick. `swap_remove`
                // of a uniform index is an O(1) draw — a full shuffle
                // per pop would be Θ(|V|·width), quadratic on wide
                // DAGs, and this path runs inside every portfolio race.
                let mut rng = StdRng::seed_from_u64(seed);
                let mut indeg: Vec<usize> = g.op_ids().map(|v| g.preds(v).len()).collect();
                let mut ready: Vec<OpId> =
                    g.op_ids().filter(|&v| indeg[v.index()] == 0).collect();
                let mut order = Vec::with_capacity(g.len());
                while !ready.is_empty() {
                    let i = rng.random_range(0..ready.len());
                    let v = ready.swap_remove(i);
                    order.push(v);
                    for &q in g.succs(v) {
                        indeg[q.index()] -= 1;
                        if indeg[q.index()] == 0 {
                            ready.push(q);
                        }
                    }
                }
                order
            }
        };
        debug_assert_eq!(order.len(), g.len());
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::bench_graphs;

    fn is_permutation(g: &PrecedenceGraph, order: &[OpId]) -> bool {
        let mut seen = vec![false; g.len()];
        for v in order {
            if seen[v.index()] {
                return false;
            }
            seen[v.index()] = true;
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn all_meta_schedules_are_permutations() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 2);
        for m in MetaSchedule::PAPER
            .into_iter()
            .chain([MetaSchedule::Random(3), MetaSchedule::RandomTopo(3)])
        {
            let order = m.order(&g, &r).unwrap();
            assert!(is_permutation(&g, &order), "{}", m.name());
        }
    }

    #[test]
    fn topological_meta_respects_edges() {
        let g = bench_graphs::ewf();
        let order = MetaSchedule::Topological
            .order(&g, &ResourceSet::uniform(2))
            .unwrap();
        let mut pos = vec![0usize; g.len()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for (p, q) in g.edges() {
            assert!(pos[p.index()] < pos[q.index()]);
        }
    }

    #[test]
    fn path_based_feeds_critical_path_first() {
        let g = bench_graphs::hal();
        let order = MetaSchedule::PathBased
            .order(&g, &ResourceSet::uniform(2))
            .unwrap();
        let cp = algo::critical_path(&g);
        // The first fed path carries the full critical-path weight (the
        // exact vertices may differ when several critical paths tie).
        let fed: u64 = order[..cp.len()].iter().map(|&v| g.delay(v)).sum();
        assert_eq!(fed, algo::diameter(&g));
        for pair in order[..cp.len()].windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn list_based_requires_units() {
        let g = bench_graphs::hal();
        let err = MetaSchedule::ListBased.order(&g, &ResourceSet::classic(2, 0));
        assert!(matches!(err, Err(SchedError::Baseline(_))));
    }

    #[test]
    fn random_orders_differ_by_seed_but_not_by_run() {
        let g = bench_graphs::ewf();
        let r = ResourceSet::uniform(2);
        let a1 = MetaSchedule::Random(1).order(&g, &r).unwrap();
        let a2 = MetaSchedule::Random(1).order(&g, &r).unwrap();
        let b = MetaSchedule::Random(2).order(&g, &r).unwrap();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn random_seed_stability_survives_graph_reconstruction() {
        // The portfolio's determinism rests on seeded orders being a
        // pure function of (seed, graph): recomputing on a freshly
        // rebuilt graph must reproduce the order exactly.
        let r = ResourceSet::uniform(2);
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for meta in [MetaSchedule::Random(seed), MetaSchedule::RandomTopo(seed)] {
                let first = meta.order(&bench_graphs::ewf(), &r).unwrap();
                let again = meta.order(&bench_graphs::ewf(), &r).unwrap();
                assert_eq!(first, again, "{} seed {seed}", meta.name());
            }
        }
    }

    #[test]
    fn random_topo_respects_edges_and_varies_by_seed() {
        let g = bench_graphs::ewf();
        let r = ResourceSet::uniform(2);
        let a = MetaSchedule::RandomTopo(7).order(&g, &r).unwrap();
        let b = MetaSchedule::RandomTopo(8).order(&g, &r).unwrap();
        assert_ne!(a, b, "different seeds must explore different tie-breaks");
        let mut pos = vec![0usize; g.len()];
        for (i, v) in a.iter().enumerate() {
            pos[v.index()] = i;
        }
        for (p, q) in g.edges() {
            assert!(pos[p.index()] < pos[q.index()], "edge {p} -> {q} violated");
        }
    }

    #[test]
    fn names_match_paper_rows() {
        assert_eq!(MetaSchedule::Dfs.name(), "meta sched1");
        assert_eq!(MetaSchedule::ListBased.name(), "meta sched4");
    }
}
