//! The pre-optimization threaded scheduler, retained verbatim as the
//! golden baseline.
//!
//! This is the seed implementation of Algorithm 1: correct, but with a
//! full `relabel()` + chain renumber after every `commit` (`O(|V|·K)`
//! work per operation) and fresh heap allocations on every `select`.
//! The optimized [`crate::ThreadedScheduler`] must produce *bit-identical*
//! placement sequences and extracted schedules — the golden-equivalence
//! suite (`tests/golden_equivalence.rs`) enforces this on seeded random
//! graphs, and the `bench_json` binary reports the measured speedup
//! against this implementation in `BENCH_1.json`.
//!
//! Do not "improve" this file: its value is being frozen.

use crate::{Placement, SchedError};
use hls_ir::{algo, BitMatrix, HardSchedule, OpId, OpKind, PrecedenceGraph, ResourceClass, ResourceSet};

#[derive(Clone, Debug)]
struct Node {
    /// Per thread `j`: the node in thread `j` with an edge into this node.
    inc: Vec<Option<u32>>,
    /// Per thread `j`: the node in thread `j` this node has an edge to.
    out: Vec<Option<u32>>,
    thread: usize,
    /// Chain position; consecutive integers, renumbered after insertion.
    pos: u64,
    sdist: u64,
    tdist: u64,
    delay: u64,
}

impl Node {
    fn new(threads: usize, thread: usize, delay: u64) -> Self {
        Node {
            inc: vec![None; threads],
            out: vec![None; threads],
            thread,
            pos: 0,
            sdist: 0,
            tdist: 0,
            delay,
        }
    }
}

/// The seed (pre-refactor) threaded scheduler — see the module docs.
#[derive(Clone, Debug)]
pub struct ReferenceScheduler {
    g: PrecedenceGraph,
    /// Strict ancestors per op (row `v` = `{p : p ≺_G v}`).
    anc: BitMatrix,
    /// Strict descendants per op.
    desc: BitMatrix,
    resources: ResourceSet,
    nodes: Vec<Node>,
    /// Per thread: source/sink sentinel node indices.
    sent_s: Vec<u32>,
    sent_t: Vec<u32>,
    /// Per op: its node, if scheduled.
    node_of: Vec<Option<u32>>,
    /// Per node: its op (`None` for sentinels).
    op_of: Vec<Option<OpId>>,
    /// Number of threads (resource units plus wire singleton threads).
    threads: usize,
    history: Vec<OpId>,
}

impl ReferenceScheduler {
    /// Creates a scheduler over `g` with one thread per unit of
    /// `resources`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Ir`] if `g` is cyclic.
    pub fn new(g: PrecedenceGraph, resources: ResourceSet) -> Result<Self, SchedError> {
        g.validate()?;
        let (anc, desc) = closures(&g);
        let k = resources.k();
        let mut ts = ReferenceScheduler {
            node_of: vec![None; g.len()],
            g,
            anc,
            desc,
            resources,
            nodes: Vec::with_capacity(2 * k),
            sent_s: Vec::with_capacity(k),
            sent_t: Vec::with_capacity(k),
            op_of: Vec::new(),
            threads: 0,
            history: Vec::new(),
        };
        for _ in 0..k {
            ts.push_thread();
        }
        Ok(ts)
    }

    /// The scheduler's working copy of the precedence graph.
    pub fn graph(&self) -> &PrecedenceGraph {
        &self.g
    }

    /// `true` if `v` is already in the scheduling state.
    pub fn is_scheduled(&self, v: OpId) -> bool {
        self.node_of.get(v.index()).copied().flatten().is_some()
    }

    /// The thread of a scheduled operation.
    pub fn thread_of(&self, v: OpId) -> Option<usize> {
        self.node_of
            .get(v.index())
            .copied()
            .flatten()
            .map(|n| self.nodes[n as usize].thread)
    }

    /// The operations of thread `k` in chain order.
    pub fn chain(&self, k: usize) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[self.sent_s[k] as usize].out[k];
        while let Some(n) = cur {
            if n == self.sent_t[k] {
                break;
            }
            out.push(self.op_of[n as usize].expect("chain nodes are real ops"));
            cur = self.nodes[n as usize].out[k];
        }
        out
    }

    /// The diameter `‖S‖` of the scheduling state.
    pub fn diameter(&self) -> u64 {
        self.nodes.iter().map(|n| n.sdist).max().unwrap_or(0)
    }

    /// `select` then `commit` (the paper's `schedule` method).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::UnknownOp`] for out-of-range ids and
    /// [`SchedError::NoCompatibleUnit`] if no thread can execute the
    /// operation.
    pub fn schedule(&mut self, v: OpId) -> Result<Placement, SchedError> {
        if v.index() >= self.g.len() {
            return Err(SchedError::UnknownOp(v));
        }
        if let Some(n) = self.node_of[v.index()] {
            let node = &self.nodes[n as usize];
            let after = self.chain_pred_op(n);
            return Ok(Placement {
                thread: node.thread,
                after,
                cost: node.sdist + node.tdist - node.delay,
            });
        }
        if self.g.kind(v).resource_class() == ResourceClass::Wire {
            return self.schedule_wire(v);
        }
        let placement = self.select(v)?;
        self.commit(placement, v);
        Ok(placement)
    }

    /// Schedules every operation of `order` in sequence.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SchedError`] encountered.
    pub fn schedule_all(
        &mut self,
        order: impl IntoIterator<Item = OpId>,
    ) -> Result<(), SchedError> {
        for v in order {
            self.schedule(v)?;
        }
        Ok(())
    }

    /// The paper's `select`: earliest cost-minimal feasible position.
    ///
    /// # Errors
    ///
    /// Same contract as [`ReferenceScheduler::schedule`].
    pub fn select(&self, v: OpId) -> Result<Placement, SchedError> {
        let mut best: Option<Placement> = None;
        self.for_each_feasible(v, |p| {
            if best.is_none_or(|b| p.cost < b.cost) {
                best = Some(p);
            }
        })?;
        best.ok_or(SchedError::NoCompatibleUnit(v, self.g.kind(v)))
    }

    /// Latest cost-minimal feasible position.
    ///
    /// # Errors
    ///
    /// Same contract as [`ReferenceScheduler::schedule`].
    pub fn select_late(&self, v: OpId) -> Result<Placement, SchedError> {
        let mut best: Option<Placement> = None;
        self.for_each_feasible(v, |p| {
            if best.is_none_or(|b| p.cost <= b.cost) {
                best = Some(p);
            }
        })?;
        best.ok_or(SchedError::NoCompatibleUnit(v, self.g.kind(v)))
    }

    /// Schedules `v` at the latest cost-optimal position.
    ///
    /// # Errors
    ///
    /// Same contract as [`ReferenceScheduler::schedule`].
    pub fn schedule_late(&mut self, v: OpId) -> Result<Placement, SchedError> {
        if v.index() >= self.g.len() {
            return Err(SchedError::UnknownOp(v));
        }
        if self.is_scheduled(v) {
            return self.schedule(v);
        }
        if self.g.kind(v).resource_class() == ResourceClass::Wire {
            return self.schedule_wire(v);
        }
        let placement = self.select_late(v)?;
        self.commit(placement, v);
        Ok(placement)
    }

    /// Every feasible placement for `v` with its cost, in deterministic
    /// (thread, position) order.
    ///
    /// # Errors
    ///
    /// Same contract as [`ReferenceScheduler::schedule`].
    pub fn feasible_placements(&self, v: OpId) -> Result<Vec<Placement>, SchedError> {
        let mut out = Vec::new();
        self.for_each_feasible(v, |p| out.push(p))?;
        Ok(out)
    }

    /// The paper's `commit` with the Figure 2 update rules.
    ///
    /// # Panics
    ///
    /// Panics if the placement refers to an unknown thread or an
    /// operation that is not in that thread.
    pub fn commit(&mut self, placement: Placement, v: OpId) {
        assert!(placement.thread < self.threads, "unknown thread");
        let k = placement.thread;
        let pos_node = match placement.after {
            None => self.sent_s[k],
            Some(op) => {
                let n = self.node_of[op.index()].expect("placement.after must be scheduled");
                assert_eq!(self.nodes[n as usize].thread, k, "after-op not in thread");
                n
            }
        };
        let n = self.new_node(k, self.g.delay(v));

        // Chain insertion after pos_node.
        let next = self.nodes[pos_node as usize].out[k].expect("chain is closed by sentinels");
        self.nodes[n as usize].out[k] = Some(next);
        self.nodes[next as usize].inc[k] = Some(n);
        self.nodes[pos_node as usize].out[k] = Some(n);
        self.nodes[n as usize].inc[k] = Some(pos_node);
        self.renumber_chain(k);

        self.node_of[v.index()] = Some(n);
        self.op_of[n as usize] = Some(v);

        // Figure 2 rules, predecessors then successors.
        let preds: Vec<u32> = self.scheduled_ancestors(v);
        for p in preds {
            self.apply_pred_rule(p, n, k);
        }
        let succs: Vec<u32> = self.scheduled_descendants(v);
        for q in succs {
            self.apply_succ_rule(q, n, k);
        }

        self.history.push(v);
        self.relabel();
    }

    /// Extracts the hard schedule implied by the current state.
    pub fn extract_hard(&self) -> HardSchedule {
        let mut sched = HardSchedule::new(self.g.len());
        for v in self.g.op_ids() {
            if let Some(n) = self.node_of[v.index()] {
                let node = &self.nodes[n as usize];
                let unit = if node.thread < self.resources.k() {
                    Some(node.thread)
                } else {
                    None
                };
                sched.assign(v, node.sdist - node.delay, unit);
            }
        }
        for v in self.g.op_ids() {
            if self.g.kind(v) != OpKind::Load {
                continue;
            }
            let Some(n) = self.node_of[v.index()] else { continue };
            let node = &self.nodes[n as usize];
            let mut latest = u64::MAX;
            for j in 0..self.threads {
                if let Some(m) = node.out[j] {
                    if let Some(succ) = self.op_of[m as usize] {
                        let s = sched.start(succ).expect("state successors are scheduled");
                        latest = latest.min(s);
                    }
                }
            }
            if latest != u64::MAX {
                let asap = node.sdist - node.delay;
                let alap = latest.saturating_sub(node.delay);
                if alap > asap {
                    let unit = sched.unit(v);
                    sched.assign(v, alap, unit);
                }
            }
        }
        sched
    }

    /// Splices a chain of new operations onto the edge `from -> to` and
    /// schedules them, in order.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Ir`] if `from -> to` is not an edge, plus the
    /// scheduling errors of [`ReferenceScheduler::schedule`].
    pub fn refine_splice(
        &mut self,
        from: OpId,
        to: OpId,
        chain: impl IntoIterator<Item = (OpKind, u64, String)>,
    ) -> Result<Vec<OpId>, SchedError> {
        let inserted = self.g.splice_on_edge(from, to, chain)?;
        self.sync_graph_growth();
        for &v in &inserted {
            if self.g.kind(v) == OpKind::Load {
                self.schedule_late(v)?;
            } else {
                self.schedule(v)?;
            }
        }
        Ok(inserted)
    }

    // ------------------------------------------------------------------
    // Internals (identical to the seed implementation).
    // ------------------------------------------------------------------

    fn push_thread(&mut self) -> usize {
        let k = self.threads;
        self.threads += 1;
        for node in &mut self.nodes {
            node.inc.push(None);
            node.out.push(None);
        }
        let s = self.alloc_raw_node(k, 0);
        let t = self.alloc_raw_node(k, 0);
        self.nodes[s as usize].out[k] = Some(t);
        self.nodes[t as usize].inc[k] = Some(s);
        self.nodes[t as usize].pos = 1;
        self.sent_s.push(s);
        self.sent_t.push(t);
        k
    }

    fn alloc_raw_node(&mut self, thread: usize, delay: u64) -> u32 {
        let idx = u32::try_from(self.nodes.len()).expect("node count exceeds u32");
        self.nodes.push(Node::new(self.threads, thread, delay));
        self.op_of.push(None);
        idx
    }

    fn new_node(&mut self, thread: usize, delay: u64) -> u32 {
        self.alloc_raw_node(thread, delay)
    }

    fn chain_pred_op(&self, n: u32) -> Option<OpId> {
        let node = &self.nodes[n as usize];
        let prev = node.inc[node.thread].expect("real nodes have chain predecessors");
        self.op_of[prev as usize]
    }

    fn scheduled_ancestors(&self, v: OpId) -> Vec<u32> {
        self.anc
            .iter_row(v.index())
            .filter_map(|i| self.node_of[i])
            .collect()
    }

    fn scheduled_descendants(&self, v: OpId) -> Vec<u32> {
        self.desc
            .iter_row(v.index())
            .filter_map(|i| self.node_of[i])
            .collect()
    }

    fn schedule_wire(&mut self, v: OpId) -> Result<Placement, SchedError> {
        let k = self.push_thread();
        let placement = Placement {
            thread: k,
            after: None,
            cost: 0,
        };
        self.commit(placement, v);
        let n = self.node_of[v.index()].expect("just committed");
        let node = &self.nodes[n as usize];
        Ok(Placement {
            cost: node.sdist + node.tdist - node.delay,
            ..placement
        })
    }

    fn for_each_feasible(
        &self,
        v: OpId,
        mut f: impl FnMut(Placement),
    ) -> Result<(), SchedError> {
        if v.index() >= self.g.len() {
            return Err(SchedError::UnknownOp(v));
        }
        let kind = self.g.kind(v);
        let eligible: Vec<usize> = (0..self.resources.k())
            .filter(|&k| self.resources.compatible(k, kind))
            .collect();
        if eligible.is_empty() {
            return Err(SchedError::NoCompatibleUnit(v, kind));
        }

        let pred_nodes = self.scheduled_ancestors(v);
        let succ_nodes = self.scheduled_descendants(v);
        let intrinsic_src = pred_nodes
            .iter()
            .map(|&p| self.nodes[p as usize].sdist)
            .max()
            .unwrap_or(0);
        let intrinsic_snk = succ_nodes
            .iter()
            .map(|&q| self.nodes[q as usize].tdist)
            .max()
            .unwrap_or(0);

        let back = self.mark(&pred_nodes, Direction::Backward);
        let fwd = self.mark(&succ_nodes, Direction::Forward);
        let mut lo = vec![0u64; self.threads];
        let mut hi = vec![u64::MAX; self.threads];
        for (ni, node) in self.nodes.iter().enumerate() {
            if back[ni] {
                lo[node.thread] = lo[node.thread].max(node.pos);
            }
            if fwd[ni] {
                hi[node.thread] = hi[node.thread].min(node.pos);
            }
        }

        let delay = self.g.delay(v);
        for k in eligible {
            let mut cur = self.sent_s[k];
            loop {
                let node = &self.nodes[cur as usize];
                let Some(next) = node.out[k] else { break };
                if node.pos >= lo[k] && node.pos < hi[k] {
                    let nn = &self.nodes[next as usize];
                    let sdist = node.sdist.max(intrinsic_src);
                    let tdist = nn.tdist.max(intrinsic_snk);
                    f(Placement {
                        thread: k,
                        after: self.op_of[cur as usize],
                        cost: sdist + tdist + delay,
                    });
                }
                cur = next;
            }
        }
        Ok(())
    }

    fn mark(&self, roots: &[u32], dir: Direction) -> Vec<bool> {
        let mut marked = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for &r in roots {
            if !marked[r as usize] {
                marked[r as usize] = true;
                stack.push(r);
            }
        }
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n as usize];
            let edges = match dir {
                Direction::Backward => &node.inc,
                Direction::Forward => &node.out,
            };
            for &e in edges.iter().flatten() {
                if !marked[e as usize] {
                    marked[e as usize] = true;
                    stack.push(e);
                }
            }
        }
        marked
    }

    fn apply_pred_rule(&mut self, p: u32, n: u32, k: usize) {
        let j = self.nodes[p as usize].thread;
        match self.nodes[p as usize].out[k] {
            Some(q) if q == n || self.nodes[q as usize].pos < self.nodes[n as usize].pos => {
                return;
            }
            Some(q) => {
                debug_assert_eq!(self.nodes[q as usize].inc[j], Some(p));
                self.nodes[q as usize].inc[j] = None;
                self.nodes[p as usize].out[k] = None;
            }
            None => {}
        }
        match self.nodes[n as usize].inc[j] {
            Some(p2) if p2 == p => {
                self.nodes[p as usize].out[k] = Some(n);
            }
            Some(p2) if self.nodes[p2 as usize].pos > self.nodes[p as usize].pos => {}
            Some(p2) => {
                self.nodes[p2 as usize].out[k] = None;
                self.nodes[n as usize].inc[j] = Some(p);
                self.nodes[p as usize].out[k] = Some(n);
            }
            None => {
                self.nodes[n as usize].inc[j] = Some(p);
                self.nodes[p as usize].out[k] = Some(n);
            }
        }
    }

    fn apply_succ_rule(&mut self, q: u32, n: u32, k: usize) {
        let j2 = self.nodes[q as usize].thread;
        match self.nodes[q as usize].inc[k] {
            Some(u) if u == n || self.nodes[u as usize].pos > self.nodes[n as usize].pos => {
                return;
            }
            Some(u) => {
                debug_assert_eq!(self.nodes[u as usize].out[j2], Some(q));
                self.nodes[u as usize].out[j2] = None;
                self.nodes[q as usize].inc[k] = None;
            }
            None => {}
        }
        match self.nodes[n as usize].out[j2] {
            Some(q2) if q2 == q => {
                self.nodes[q as usize].inc[k] = Some(n);
            }
            Some(q2) if self.nodes[q2 as usize].pos < self.nodes[q as usize].pos => {}
            Some(q2) => {
                self.nodes[q2 as usize].inc[k] = None;
                self.nodes[n as usize].out[j2] = Some(q);
                self.nodes[q as usize].inc[k] = Some(n);
            }
            None => {
                self.nodes[n as usize].out[j2] = Some(q);
                self.nodes[q as usize].inc[k] = Some(n);
            }
        }
    }

    fn renumber_chain(&mut self, k: usize) {
        let mut pos = 0u64;
        let mut cur = self.sent_s[k];
        loop {
            self.nodes[cur as usize].pos = pos;
            pos += 1;
            match self.nodes[cur as usize].out[k] {
                Some(next) => cur = next,
                None => break,
            }
        }
    }

    /// Full `forwardLabel` / `backwardLabel` passes over the whole state —
    /// the `O(|V|·K)`-per-commit cost the optimized scheduler removes.
    fn relabel(&mut self) {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = self
            .nodes
            .iter()
            .map(|nd| nd.inc.iter().flatten().count())
            .collect();
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut head = 0;
        let mut topo: Vec<u32> = Vec::with_capacity(n);
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            topo.push(i);
            let best = self.nodes[i as usize]
                .inc
                .iter()
                .flatten()
                .map(|&p| self.nodes[p as usize].sdist)
                .max()
                .unwrap_or(0);
            self.nodes[i as usize].sdist = best + self.nodes[i as usize].delay;
            for j in 0..self.threads {
                if let Some(m) = self.nodes[i as usize].out[j] {
                    indeg[m as usize] -= 1;
                    if indeg[m as usize] == 0 {
                        queue.push(m);
                    }
                }
            }
        }
        assert_eq!(topo.len(), n, "scheduling state must stay acyclic");
        for &i in topo.iter().rev() {
            let best = self.nodes[i as usize]
                .out
                .iter()
                .flatten()
                .map(|&q| self.nodes[q as usize].tdist)
                .max()
                .unwrap_or(0);
            self.nodes[i as usize].tdist = best + self.nodes[i as usize].delay;
        }
    }

    /// Full-closure recompute on graph growth — the `O(|V|³/64)` cost the
    /// optimized scheduler replaces with incremental growth.
    fn sync_graph_growth(&mut self) {
        self.node_of.resize(self.g.len(), None);
        let (anc, desc) = closures(&self.g);
        self.anc = anc;
        self.desc = desc;
    }
}

enum Direction {
    Backward,
    Forward,
}

/// Closure construction is the one shared (frozen-behavior-neutral)
/// piece: it delegates to the canonical word-parallel
/// [`hls_ir::algo::closures`], which produces bit-identical matrices to
/// the seed's bit-by-bit ancestor build. Construction is excluded from
/// every timed comparison, so the frozen *scheduling* behavior above is
/// untouched.
fn closures(g: &PrecedenceGraph) -> (BitMatrix, BitMatrix) {
    algo::closures(g)
}
