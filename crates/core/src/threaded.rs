//! The threaded scheduler — Algorithm 1 of the paper.
//!
//! The scheduling state is a *threaded graph* (Definition 4): its vertices
//! are partitioned into `K` threads — one per functional unit — such that
//! each thread is totally ordered. Internally every thread is a doubly
//! linked chain between two sentinels (`s[k]`, `t[k]`, exactly as in the
//! paper's `ThreadedGraph` constructor), and every vertex keeps at most
//! one incoming and one outgoing *cross edge per thread* (the compression
//! that yields the degree bound of Lemma 7 and the linear complexity of
//! Theorem 3).
//!
//! Three clarifications relative to the paper's pseudocode are documented
//! in `DESIGN.md` §3: the inclusive distance convention, the per-thread
//! *feasible window* (computed from the state order, not just immediate
//! chain neighbours) and tight-edge hygiene in `commit` when several
//! ancestors share a thread.

use crate::{SchedError, soft::StateSnapshot};
use hls_ir::{
    algo, BitMatrix, HardSchedule, OpId, OpKind, PrecedenceGraph, ResourceClass, ResourceSet,
};

/// Where `select` decided to put an operation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Placement {
    /// Thread (functional-unit) index.
    pub thread: usize,
    /// The operation after which the new vertex is inserted; `None` means
    /// the head of the thread (right after the `s[k]` sentinel).
    pub after: Option<OpId>,
    /// The distance `‖←v→‖` the new vertex will have — by Theorem 2 also
    /// the diameter of the new state if it exceeds the old diameter.
    pub cost: u64,
}

#[derive(Clone, Debug)]
struct Node {
    /// Per thread `j`: the node in thread `j` with an edge into this node.
    inc: Vec<Option<u32>>,
    /// Per thread `j`: the node in thread `j` this node has an edge to.
    out: Vec<Option<u32>>,
    thread: usize,
    /// Chain position; consecutive integers, renumbered after insertion.
    pos: u64,
    sdist: u64,
    tdist: u64,
    delay: u64,
}

impl Node {
    fn new(threads: usize, thread: usize, delay: u64) -> Self {
        Node {
            inc: vec![None; threads],
            out: vec![None; threads],
            thread,
            pos: 0,
            sdist: 0,
            tdist: 0,
            delay,
        }
    }
}

/// The threaded (soft) scheduler: an online automaton that adds one
/// operation at a time to a threaded scheduling state.
///
/// See the [crate docs](crate) and the paper's Section 4. The scheduler
/// owns a working copy of the precedence graph so that [`refinement
/// operations`](Self::refine_splice) can extend the behavior (spill code,
/// wire delays) and the state coherently.
#[derive(Clone, Debug)]
pub struct ThreadedScheduler {
    g: PrecedenceGraph,
    /// Strict ancestors per op (row `v` = `{p : p ≺_G v}`).
    anc: BitMatrix,
    /// Strict descendants per op.
    desc: BitMatrix,
    resources: ResourceSet,
    nodes: Vec<Node>,
    /// Per thread: source/sink sentinel node indices.
    sent_s: Vec<u32>,
    sent_t: Vec<u32>,
    /// Per op: its node, if scheduled.
    node_of: Vec<Option<u32>>,
    /// Per node: its op (`None` for sentinels).
    op_of: Vec<Option<OpId>>,
    /// Number of threads (resource units plus wire singleton threads).
    threads: usize,
    history: Vec<OpId>,
}

impl ThreadedScheduler {
    /// Creates a scheduler over `g` with one thread per unit of
    /// `resources`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Ir`] if `g` is cyclic.
    pub fn new(g: PrecedenceGraph, resources: ResourceSet) -> Result<Self, SchedError> {
        g.validate()?;
        let (anc, desc) = closures(&g);
        let k = resources.k();
        let mut ts = ThreadedScheduler {
            node_of: vec![None; g.len()],
            g,
            anc,
            desc,
            resources,
            nodes: Vec::with_capacity(2 * k),
            sent_s: Vec::with_capacity(k),
            sent_t: Vec::with_capacity(k),
            op_of: Vec::new(),
            threads: 0,
            history: Vec::new(),
        };
        for _ in 0..k {
            ts.push_thread();
        }
        Ok(ts)
    }

    /// The scheduler's working copy of the precedence graph (grows under
    /// refinement).
    pub fn graph(&self) -> &PrecedenceGraph {
        &self.g
    }

    /// The functional-unit allocation.
    pub fn resources(&self) -> &ResourceSet {
        &self.resources
    }

    /// Current number of threads, including wire singleton threads.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// `true` if `v` is already in the scheduling state.
    pub fn is_scheduled(&self, v: OpId) -> bool {
        self.node_of.get(v.index()).copied().flatten().is_some()
    }

    /// Number of scheduled operations.
    pub fn scheduled_count(&self) -> usize {
        self.history.len()
    }

    /// The operations in the order they were scheduled.
    pub fn history(&self) -> &[OpId] {
        &self.history
    }

    /// The thread of a scheduled operation.
    pub fn thread_of(&self, v: OpId) -> Option<usize> {
        self.node_of
            .get(v.index())
            .copied()
            .flatten()
            .map(|n| self.nodes[n as usize].thread)
    }

    /// The operations of thread `k` in chain order.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.thread_count()`.
    pub fn chain(&self, k: usize) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[self.sent_s[k] as usize].out[k];
        while let Some(n) = cur {
            if n == self.sent_t[k] {
                break;
            }
            out.push(self.op_of[n as usize].expect("chain nodes are real ops"));
            cur = self.nodes[n as usize].out[k];
        }
        out
    }

    /// The diameter `‖S‖` of the scheduling state — the critical-path
    /// delay-sum including all artificial serialisation edges. By
    /// Lemma 4 this is monotone under scheduling.
    pub fn diameter(&self) -> u64 {
        self.nodes.iter().map(|n| n.sdist).max().unwrap_or(0)
    }

    /// Schedules one operation: `select` then `commit` (the paper's
    /// `schedule` method). Scheduling an operation already in the state
    /// is a no-op returning its current placement (Definition 3's
    /// incremental condition).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::UnknownOp`] for out-of-range ids and
    /// [`SchedError::NoCompatibleUnit`] if no thread can execute the
    /// operation.
    pub fn schedule(&mut self, v: OpId) -> Result<Placement, SchedError> {
        if v.index() >= self.g.len() {
            return Err(SchedError::UnknownOp(v));
        }
        if let Some(n) = self.node_of[v.index()] {
            let node = &self.nodes[n as usize];
            let after = self.chain_pred_op(n);
            return Ok(Placement {
                thread: node.thread,
                after,
                cost: node.sdist + node.tdist - node.delay,
            });
        }
        if self.g.kind(v).resource_class() == ResourceClass::Wire {
            return self.schedule_wire(v);
        }
        let placement = self.select(v)?;
        self.commit(placement, v);
        Ok(placement)
    }

    /// Schedules every operation of `order` in sequence.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SchedError`] encountered.
    pub fn schedule_all(
        &mut self,
        order: impl IntoIterator<Item = OpId>,
    ) -> Result<(), SchedError> {
        for v in order {
            self.schedule(v)?;
        }
        Ok(())
    }

    /// The paper's `select`: finds the feasible insertion position
    /// minimising the distance of the new vertex — hence, by Theorem 2,
    /// the diameter of the resulting state — in `O(K · |V_S|)` time,
    /// without speculative commits.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedScheduler::schedule`].
    pub fn select(&self, v: OpId) -> Result<Placement, SchedError> {
        let mut best: Option<Placement> = None;
        self.for_each_feasible(v, |p| {
            if best.is_none_or(|b| p.cost < b.cost) {
                best = Some(p);
            }
        })?;
        best.ok_or(SchedError::NoCompatibleUnit(v, self.g.kind(v)))
    }

    /// Like [`ThreadedScheduler::select`], but among cost-tied optimal
    /// positions prefers the *last* one in scan order (latest chain
    /// position). Online optimality is unaffected (Theorem 2 fixes only
    /// the cost); the bias matters for register pressure: spill reloads
    /// scheduled late keep their values in memory longest.
    pub fn select_late(&self, v: OpId) -> Result<Placement, SchedError> {
        let mut best: Option<Placement> = None;
        self.for_each_feasible(v, |p| {
            if best.is_none_or(|b| p.cost <= b.cost) {
                best = Some(p);
            }
        })?;
        best.ok_or(SchedError::NoCompatibleUnit(v, self.g.kind(v)))
    }

    /// Schedules `v` at the latest cost-optimal position (see
    /// [`ThreadedScheduler::select_late`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedScheduler::schedule`].
    pub fn schedule_late(&mut self, v: OpId) -> Result<Placement, SchedError> {
        if v.index() >= self.g.len() {
            return Err(SchedError::UnknownOp(v));
        }
        if self.is_scheduled(v) {
            return self.schedule(v);
        }
        if self.g.kind(v).resource_class() == ResourceClass::Wire {
            return self.schedule_wire(v);
        }
        let placement = self.select_late(v)?;
        self.commit(placement, v);
        Ok(placement)
    }

    /// Every feasible placement for `v` with its cost, in deterministic
    /// (thread, position) order. Used by the exhaustive oracle and by
    /// tests of Theorem 2.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedScheduler::schedule`].
    pub fn feasible_placements(&self, v: OpId) -> Result<Vec<Placement>, SchedError> {
        let mut out = Vec::new();
        self.for_each_feasible(v, |p| out.push(p))?;
        Ok(out)
    }

    /// Commits a placement produced by [`ThreadedScheduler::select`] or
    /// [`ThreadedScheduler::feasible_placements`] — the paper's `commit`
    /// with the Figure 2 update rules.
    ///
    /// # Panics
    ///
    /// Panics if the placement refers to an unknown thread or an
    /// operation that is not in that thread (placements must come from
    /// this scheduler's `select`/`feasible_placements` on the current
    /// state).
    pub fn commit(&mut self, placement: Placement, v: OpId) {
        assert!(placement.thread < self.threads, "unknown thread");
        let k = placement.thread;
        let pos_node = match placement.after {
            None => self.sent_s[k],
            Some(op) => {
                let n = self.node_of[op.index()].expect("placement.after must be scheduled");
                assert_eq!(self.nodes[n as usize].thread, k, "after-op not in thread");
                n
            }
        };
        let n = self.new_node(k, self.g.delay(v));

        // Chain insertion after pos_node.
        let next = self.nodes[pos_node as usize].out[k].expect("chain is closed by sentinels");
        self.nodes[n as usize].out[k] = Some(next);
        self.nodes[next as usize].inc[k] = Some(n);
        self.nodes[pos_node as usize].out[k] = Some(n);
        self.nodes[n as usize].inc[k] = Some(pos_node);
        self.renumber_chain(k);

        self.node_of[v.index()] = Some(n);
        self.op_of[n as usize] = Some(v);

        // Figure 2 rules, predecessors then successors.
        let preds: Vec<u32> = self.scheduled_ancestors(v);
        for p in preds {
            self.apply_pred_rule(p, n, k);
        }
        let succs: Vec<u32> = self.scheduled_descendants(v);
        for q in succs {
            self.apply_succ_rule(q, n, k);
        }

        self.history.push(v);
        self.relabel();
    }

    /// Extracts the hard schedule implied by the current state: every
    /// scheduled operation starts at `sdist − delay` (the ASAP schedule of
    /// the threaded graph; resource exclusion is already encoded in the
    /// thread chains). Unscheduled operations are left unassigned.
    pub fn extract_hard(&self) -> HardSchedule {
        let mut sched = HardSchedule::new(self.g.len());
        for v in self.g.op_ids() {
            if let Some(n) = self.node_of[v.index()] {
                let node = &self.nodes[n as usize];
                let unit = if node.thread < self.resources.k() {
                    Some(node.thread)
                } else {
                    None
                };
                sched.assign(v, node.sdist - node.delay, unit);
            }
        }
        // Spill reloads issue as late as their state slack allows, so
        // the spilled value stays in background memory instead of a
        // register. Pushing a Load to `min(successor starts) − delay`
        // respects every state edge (including the memory-port chain),
        // so the schedule stays legal.
        for v in self.g.op_ids() {
            if self.g.kind(v) != OpKind::Load {
                continue;
            }
            let Some(n) = self.node_of[v.index()] else { continue };
            let node = &self.nodes[n as usize];
            let mut latest = u64::MAX;
            for j in 0..self.threads {
                if let Some(m) = node.out[j] {
                    if let Some(succ) = self.op_of[m as usize] {
                        let s = sched.start(succ).expect("state successors are scheduled");
                        latest = latest.min(s);
                    }
                }
            }
            if latest != u64::MAX {
                let asap = node.sdist - node.delay;
                let alap = latest.saturating_sub(node.delay);
                if alap > asap {
                    let unit = sched.unit(v);
                    sched.assign(v, alap, unit);
                }
            }
        }
        sched
    }

    /// Exports the scheduling state as a plain precedence graph plus
    /// thread assignment (Definition 6: the subgraph spanned by
    /// `V \ s \ t`).
    pub fn snapshot(&self) -> StateSnapshot {
        let mut graph = PrecedenceGraph::with_capacity(self.history.len());
        let mut ops = Vec::with_capacity(self.history.len());
        let mut threads = Vec::with_capacity(self.history.len());
        let mut snap_of = vec![usize::MAX; self.nodes.len()];
        for (n, node) in self.nodes.iter().enumerate() {
            let Some(op) = self.op_of[n] else { continue };
            let id = graph.add_op(self.g.kind(op), node.delay, self.g.label(op));
            snap_of[n] = id.index();
            ops.push(op);
            threads.push(node.thread);
        }
        for (n, node) in self.nodes.iter().enumerate() {
            if self.op_of[n].is_none() {
                continue;
            }
            for j in 0..self.threads {
                if let Some(m) = node.out[j] {
                    if self.op_of[m as usize].is_some() {
                        let from = OpId::from_index(snap_of[n]);
                        let to = OpId::from_index(snap_of[m as usize]);
                        graph.add_edge(from, to).expect("state edges are valid");
                    }
                }
            }
        }
        StateSnapshot { graph, ops, threads }
    }

    /// Splices a chain of new operations onto the edge `from -> to` of the
    /// behavior *and* schedules them, in order — the soft-scheduling
    /// refinement of the paper's Figure 1(c)/(d) (spill code, wire
    /// delays). Returns the new operation ids.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Ir`] if `from -> to` is not an edge, plus the
    /// scheduling errors of [`ThreadedScheduler::schedule`].
    pub fn refine_splice(
        &mut self,
        from: OpId,
        to: OpId,
        chain: impl IntoIterator<Item = (OpKind, u64, String)>,
    ) -> Result<Vec<OpId>, SchedError> {
        let inserted = self.g.splice_on_edge(from, to, chain)?;
        self.sync_graph_growth();
        for &v in &inserted {
            // Reloads go as late as their slack allows so the spilled
            // value stays in memory, not in a register; everything else
            // keeps the default (earliest-optimal) tie-break.
            if self.g.kind(v) == OpKind::Load {
                self.schedule_late(v)?;
            } else {
                self.schedule(v)?;
            }
        }
        Ok(inserted)
    }

    /// Adds a brand-new operation with the given dependencies to the
    /// behavior and schedules it (an engineering change / ECO).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::WouldCycle`] if the new edges close a cycle,
    /// plus the scheduling errors of [`ThreadedScheduler::schedule`].
    pub fn refine_add_op(
        &mut self,
        kind: OpKind,
        delay: u64,
        label: impl Into<String>,
        preds: &[OpId],
        succs: &[OpId],
    ) -> Result<OpId, SchedError> {
        let v = self.g.add_op(kind, delay, label);
        for &p in preds {
            self.g.add_edge(p, v)?;
        }
        for &q in succs {
            self.g.add_edge(v, q)?;
        }
        if self.g.validate().is_err() {
            return Err(SchedError::WouldCycle(v));
        }
        self.sync_graph_growth();
        self.schedule(v)?;
        Ok(v)
    }

    /// Renders the scheduling state as a DOT digraph: one colour per
    /// thread, solid edges for the thread chains, dashed edges for cross
    /// (dependence/serialisation) edges. Sentinels are omitted.
    pub fn state_to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        const COLORS: [&str; 8] = [
            "lightblue", "lightsalmon", "palegreen", "plum", "khaki", "lightgrey", "orange",
            "cyan",
        ];
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  node [shape=box, style=filled, fontsize=10];");
        for (n, node) in self.nodes.iter().enumerate() {
            let Some(op) = self.op_of[n] else { continue };
            let _ = writeln!(
                out,
                "  n{} [label=\"{} ({})\\nthr {} @{}\", fillcolor={}];",
                n,
                self.g.label(op),
                self.g.kind(op),
                node.thread,
                node.sdist - node.delay,
                COLORS[node.thread % COLORS.len()],
            );
        }
        for (n, node) in self.nodes.iter().enumerate() {
            if self.op_of[n].is_none() {
                continue;
            }
            for j in 0..self.threads {
                if let Some(m) = node.out[j] {
                    if self.op_of[m as usize].is_none() {
                        continue;
                    }
                    let style = if j == node.thread { "solid" } else { "dashed" };
                    let _ = writeln!(out, "  n{n} -> n{m} [style={style}];");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Changes the kind and delay of an operation in place — the SSA φ
    /// resolution of the paper's Section 1 (a φ becomes a register move
    /// or a void operation only after register allocation). The state's
    /// partial order is untouched; only the labels move.
    ///
    /// The new kind must stay zero-resource (or match the thread the
    /// operation already occupies); this is the caller's contract.
    pub fn retype_op(&mut self, v: OpId, kind: OpKind, delay: u64) {
        self.g.set_kind(v, kind);
        self.g.set_delay(v, delay);
        if let Some(n) = self.node_of[v.index()] {
            self.nodes[n as usize].delay = delay;
            self.relabel();
        }
    }

    /// Verifies the internal invariants of the state: pointer symmetry,
    /// chain integrity, the Lemma 7 degree bound, acyclicity, and label
    /// freshness.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (ni, node) in self.nodes.iter().enumerate() {
            let n = ni as u32;
            if node.inc.len() != self.threads || node.out.len() != self.threads {
                return Err(format!("node {ni}: edge arrays not sized to K"));
            }
            for j in 0..self.threads {
                if let Some(m) = node.out[j] {
                    let mn = &self.nodes[m as usize];
                    if mn.thread != j {
                        return Err(format!("node {ni}: out[{j}] lands in thread {}", mn.thread));
                    }
                    if mn.inc[node.thread] != Some(n) {
                        return Err(format!("node {ni}: out[{j}] not mirrored by inc"));
                    }
                }
                if let Some(m) = node.inc[j] {
                    let mn = &self.nodes[m as usize];
                    if mn.thread != j {
                        return Err(format!("node {ni}: inc[{j}] from thread {}", mn.thread));
                    }
                    if mn.out[node.thread] != Some(n) {
                        return Err(format!("node {ni}: inc[{j}] not mirrored by out"));
                    }
                }
            }
        }
        for k in 0..self.threads {
            let mut cur = self.sent_s[k];
            let mut last_pos = self.nodes[cur as usize].pos;
            let mut count = 0usize;
            loop {
                let Some(next) = self.nodes[cur as usize].out[k] else {
                    if cur != self.sent_t[k] {
                        return Err(format!("thread {k}: chain does not end at sentinel"));
                    }
                    break;
                };
                let np = self.nodes[next as usize].pos;
                if np <= last_pos {
                    return Err(format!("thread {k}: positions not increasing"));
                }
                last_pos = np;
                cur = next;
                count += 1;
                if count > self.nodes.len() {
                    return Err(format!("thread {k}: chain cycle"));
                }
            }
            let members = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, nd)| nd.thread == k && self.op_of[*i].is_some())
                .count();
            if members + 1 != count {
                return Err(format!(
                    "thread {k}: chain covers {count} hops but thread has {members} ops"
                ));
            }
        }
        // Acyclicity + label freshness via a fresh relabel comparison.
        let mut copy = self.clone();
        copy.relabel();
        for (ni, (a, b)) in self.nodes.iter().zip(copy.nodes.iter()).enumerate() {
            if a.sdist != b.sdist || a.tdist != b.tdist {
                return Err(format!("node {ni}: stale labels"));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn push_thread(&mut self) -> usize {
        let k = self.threads;
        self.threads += 1;
        for node in &mut self.nodes {
            node.inc.push(None);
            node.out.push(None);
        }
        let s = self.alloc_raw_node(k, 0);
        let t = self.alloc_raw_node(k, 0);
        self.nodes[s as usize].out[k] = Some(t);
        self.nodes[t as usize].inc[k] = Some(s);
        self.nodes[t as usize].pos = 1;
        self.sent_s.push(s);
        self.sent_t.push(t);
        k
    }

    fn alloc_raw_node(&mut self, thread: usize, delay: u64) -> u32 {
        let idx = u32::try_from(self.nodes.len()).expect("node count exceeds u32");
        self.nodes.push(Node::new(self.threads, thread, delay));
        self.op_of.push(None);
        idx
    }

    fn new_node(&mut self, thread: usize, delay: u64) -> u32 {
        self.alloc_raw_node(thread, delay)
    }

    fn chain_pred_op(&self, n: u32) -> Option<OpId> {
        let node = &self.nodes[n as usize];
        let prev = node.inc[node.thread].expect("real nodes have chain predecessors");
        self.op_of[prev as usize]
    }

    fn scheduled_ancestors(&self, v: OpId) -> Vec<u32> {
        self.anc
            .iter_row(v.index())
            .filter_map(|i| self.node_of[i])
            .collect()
    }

    fn scheduled_descendants(&self, v: OpId) -> Vec<u32> {
        self.desc
            .iter_row(v.index())
            .filter_map(|i| self.node_of[i])
            .collect()
    }

    /// Wire-class operations occupy no functional unit: each becomes its
    /// own singleton thread, keeping the state a well-formed threaded
    /// graph (Definition 4 with a grown `K`).
    fn schedule_wire(&mut self, v: OpId) -> Result<Placement, SchedError> {
        let k = self.push_thread();
        let placement = Placement {
            thread: k,
            after: None,
            cost: 0,
        };
        self.commit(placement, v);
        let n = self.node_of[v.index()].expect("just committed");
        let node = &self.nodes[n as usize];
        Ok(Placement {
            cost: node.sdist + node.tdist - node.delay,
            ..placement
        })
    }

    fn for_each_feasible(
        &self,
        v: OpId,
        mut f: impl FnMut(Placement),
    ) -> Result<(), SchedError> {
        if v.index() >= self.g.len() {
            return Err(SchedError::UnknownOp(v));
        }
        let kind = self.g.kind(v);
        let eligible: Vec<usize> = (0..self.resources.k())
            .filter(|&k| self.resources.compatible(k, kind))
            .collect();
        if eligible.is_empty() {
            return Err(SchedError::NoCompatibleUnit(v, kind));
        }

        let pred_nodes = self.scheduled_ancestors(v);
        let succ_nodes = self.scheduled_descendants(v);
        let intrinsic_src = pred_nodes
            .iter()
            .map(|&p| self.nodes[p as usize].sdist)
            .max()
            .unwrap_or(0);
        let intrinsic_snk = succ_nodes
            .iter()
            .map(|&q| self.nodes[q as usize].tdist)
            .max()
            .unwrap_or(0);

        // Feasible windows per thread, from the *state* order: insertion
        // after `cur` is legal iff no state-descendant of a scheduled
        // G-successor is at or before `cur`, and no state-ancestor of a
        // scheduled G-predecessor is after `cur`.
        let back = self.mark(&pred_nodes, Direction::Backward);
        let fwd = self.mark(&succ_nodes, Direction::Forward);
        let mut lo = vec![0u64; self.threads];
        let mut hi = vec![u64::MAX; self.threads];
        for (ni, node) in self.nodes.iter().enumerate() {
            if back[ni] {
                lo[node.thread] = lo[node.thread].max(node.pos);
            }
            if fwd[ni] {
                hi[node.thread] = hi[node.thread].min(node.pos);
            }
        }

        let delay = self.g.delay(v);
        for k in eligible {
            let mut cur = self.sent_s[k];
            loop {
                let node = &self.nodes[cur as usize];
                let Some(next) = node.out[k] else { break };
                if node.pos >= lo[k] && node.pos < hi[k] {
                    let nn = &self.nodes[next as usize];
                    let sdist = node.sdist.max(intrinsic_src);
                    let tdist = nn.tdist.max(intrinsic_snk);
                    f(Placement {
                        thread: k,
                        after: self.op_of[cur as usize],
                        cost: sdist + tdist + delay,
                    });
                }
                cur = next;
            }
        }
        Ok(())
    }

    fn mark(&self, roots: &[u32], dir: Direction) -> Vec<bool> {
        let mut marked = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for &r in roots {
            if !marked[r as usize] {
                marked[r as usize] = true;
                stack.push(r);
            }
        }
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n as usize];
            let edges = match dir {
                Direction::Backward => &node.inc,
                Direction::Forward => &node.out,
            };
            for &e in edges.iter().flatten() {
                if !marked[e as usize] {
                    marked[e as usize] = true;
                    stack.push(e);
                }
            }
        }
        marked
    }

    /// Figure 2 rules (a)–(c): link a scheduled G-ancestor `p` to the new
    /// node `n` in thread `k`, keeping only tightest representative edges.
    fn apply_pred_rule(&mut self, p: u32, n: u32, k: usize) {
        let j = self.nodes[p as usize].thread;
        match self.nodes[p as usize].out[k] {
            // Rule (a): existing edge to a vertex at or before `n` already
            // implies `p ≺ n` through the chain.
            Some(q) if q == n || self.nodes[q as usize].pos < self.nodes[n as usize].pos => {
                return;
            }
            // Rule (c): the edge overshoots `n`; retarget it.
            Some(q) => {
                debug_assert_eq!(self.nodes[q as usize].inc[j], Some(p));
                self.nodes[q as usize].inc[j] = None;
                self.nodes[p as usize].out[k] = None;
            }
            // Rule (b): no edge into thread `k` yet.
            None => {}
        }
        match self.nodes[n as usize].inc[j] {
            Some(p2) if p2 == p => {
                self.nodes[p as usize].out[k] = Some(n);
            }
            // A later vertex of thread `j` already guards `n`; `p ≺ p2 ≺ n`.
            Some(p2) if self.nodes[p2 as usize].pos > self.nodes[p as usize].pos => {}
            // `p` is tighter than the recorded predecessor; displace it.
            Some(p2) => {
                self.nodes[p2 as usize].out[k] = None;
                self.nodes[n as usize].inc[j] = Some(p);
                self.nodes[p as usize].out[k] = Some(n);
            }
            None => {
                self.nodes[n as usize].inc[j] = Some(p);
                self.nodes[p as usize].out[k] = Some(n);
            }
        }
    }

    /// Figure 2 rules (d)–(f): link the new node `n` (thread `k`) to a
    /// scheduled G-descendant `q`.
    fn apply_succ_rule(&mut self, q: u32, n: u32, k: usize) {
        let j2 = self.nodes[q as usize].thread;
        match self.nodes[q as usize].inc[k] {
            // Rule (d): `q` already follows a vertex after `n` in thread
            // `k`; `n ≺ u ≺ q` through the chain.
            Some(u) if u == n || self.nodes[u as usize].pos > self.nodes[n as usize].pos => {
                return;
            }
            // Rule (f): the edge comes from before `n`; retarget it.
            Some(u) => {
                debug_assert_eq!(self.nodes[u as usize].out[j2], Some(q));
                self.nodes[u as usize].out[j2] = None;
                self.nodes[q as usize].inc[k] = None;
            }
            // Rule (e): no edge from thread `k` yet.
            None => {}
        }
        match self.nodes[n as usize].out[j2] {
            Some(q2) if q2 == q => {
                self.nodes[q as usize].inc[k] = Some(n);
            }
            // An earlier vertex of thread `j2` is already guarded;
            // `n ≺ q2 ≺ q`.
            Some(q2) if self.nodes[q2 as usize].pos < self.nodes[q as usize].pos => {}
            Some(q2) => {
                self.nodes[q2 as usize].inc[k] = None;
                self.nodes[n as usize].out[j2] = Some(q);
                self.nodes[q as usize].inc[k] = Some(n);
            }
            None => {
                self.nodes[n as usize].out[j2] = Some(q);
                self.nodes[q as usize].inc[k] = Some(n);
            }
        }
    }

    fn renumber_chain(&mut self, k: usize) {
        let mut pos = 0u64;
        let mut cur = self.sent_s[k];
        loop {
            self.nodes[cur as usize].pos = pos;
            pos += 1;
            match self.nodes[cur as usize].out[k] {
                Some(next) => cur = next,
                None => break,
            }
        }
    }

    /// The paper's `forwardLabel` / `backwardLabel`: recomputes `sdist`
    /// and `tdist` for every node by one topological pass each. Linear in
    /// the state size times `K` (Lemma 7 bounds the degree by `K`).
    fn relabel(&mut self) {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = self
            .nodes
            .iter()
            .map(|nd| nd.inc.iter().flatten().count())
            .collect();
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut head = 0;
        let mut topo: Vec<u32> = Vec::with_capacity(n);
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            topo.push(i);
            let best = self.nodes[i as usize]
                .inc
                .iter()
                .flatten()
                .map(|&p| self.nodes[p as usize].sdist)
                .max()
                .unwrap_or(0);
            self.nodes[i as usize].sdist = best + self.nodes[i as usize].delay;
            for j in 0..self.threads {
                if let Some(m) = self.nodes[i as usize].out[j] {
                    indeg[m as usize] -= 1;
                    if indeg[m as usize] == 0 {
                        queue.push(m);
                    }
                }
            }
        }
        assert_eq!(topo.len(), n, "scheduling state must stay acyclic");
        for &i in topo.iter().rev() {
            let best = self.nodes[i as usize]
                .out
                .iter()
                .flatten()
                .map(|&q| self.nodes[q as usize].tdist)
                .max()
                .unwrap_or(0);
            self.nodes[i as usize].tdist = best + self.nodes[i as usize].delay;
        }
    }

    fn sync_graph_growth(&mut self) {
        self.node_of.resize(self.g.len(), None);
        let (anc, desc) = closures(&self.g);
        self.anc = anc;
        self.desc = desc;
    }
}

enum Direction {
    Backward,
    Forward,
}

fn closures(g: &PrecedenceGraph) -> (BitMatrix, BitMatrix) {
    let desc = algo::transitive_closure(g);
    let mut anc = BitMatrix::new(g.len());
    for v in g.op_ids() {
        for d in desc.iter_row(v.index()) {
            anc.set(d, v.index());
        }
    }
    (anc, desc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::bench_graphs;

    fn fig1_scheduler() -> (ThreadedScheduler, [OpId; 7]) {
        let f = bench_graphs::fig1();
        let ts = ThreadedScheduler::new(f.graph, ResourceSet::uniform(2)).unwrap();
        (ts, f.v)
    }

    #[test]
    fn empty_state_has_zero_diameter() {
        let (ts, _) = fig1_scheduler();
        assert_eq!(ts.diameter(), 0);
        assert_eq!(ts.scheduled_count(), 0);
        ts.check_invariants().unwrap();
    }

    #[test]
    fn paper_figure1e_schedule_is_reproduced() {
        // Thread A: 3,4,6,7; thread B: 1,2,5 — the soft schedule of
        // Figure 1(e), 5 states.
        let (mut ts, v) = fig1_scheduler();
        for (op, thread) in [
            (v[2], 0), // 3
            (v[3], 0), // 4
            (v[5], 0), // 6
            (v[6], 0), // 7
            (v[0], 1), // 1
            (v[1], 1), // 2
            (v[4], 1), // 5
        ] {
            // Schedule into the exact threads of Figure 1(e): take the
            // feasible tail position of the desired thread.
            let placements = ts.feasible_placements(op).unwrap();
            let p = placements
                .iter()
                .filter(|p| p.thread == thread)
                .last()
                .copied()
                .unwrap();
            ts.commit(p, op);
        }
        ts.check_invariants().unwrap();
        assert_eq!(ts.diameter(), 5);
        assert_eq!(ts.chain(0), vec![v[2], v[3], v[5], v[6]]);
        assert_eq!(ts.chain(1), vec![v[0], v[1], v[4]]);
        // The artificial serialisation 2 ≺ 5 exists in the state even
        // though the dataflow graph has no such edge.
        let snap = ts.snapshot();
        let closure = hls_ir::algo::transitive_closure(&snap.graph);
        let i2 = snap.ops.iter().position(|&o| o == v[1]).unwrap();
        let i5 = snap.ops.iter().position(|&o| o == v[4]).unwrap();
        assert!(closure.get(i2, i5), "2 ≺ 5 must be serialised");
    }

    #[test]
    fn select_is_greedy_diameter_optimal_on_fig1() {
        let (mut ts, v) = fig1_scheduler();
        // Any topological meta order; select must keep the state diameter
        // equal to the best achievable at every step (Theorem 2).
        for op in [v[0], v[2], v[1], v[4], v[3], v[5], v[6]] {
            let best_possible: u64 = ts
                .feasible_placements(op)
                .unwrap()
                .into_iter()
                .map(|p| {
                    let mut clone = ts.clone();
                    clone.commit(p, op);
                    clone.diameter()
                })
                .min()
                .unwrap();
            ts.schedule(op).unwrap();
            assert_eq!(ts.diameter(), best_possible, "scheduling {op}");
            ts.check_invariants().unwrap();
        }
        assert_eq!(ts.diameter(), 5);
    }

    #[test]
    fn scheduling_is_idempotent() {
        let (mut ts, v) = fig1_scheduler();
        let p1 = ts.schedule(v[0]).unwrap();
        let before = ts.snapshot();
        let p2 = ts.schedule(v[0]).unwrap();
        assert_eq!(p1.thread, p2.thread);
        assert_eq!(ts.scheduled_count(), 1);
        let after = ts.snapshot();
        assert_eq!(before.graph.len(), after.graph.len());
    }

    #[test]
    fn placement_cost_predicts_new_distance() {
        let (mut ts, v) = fig1_scheduler();
        for &op in &[v[0], v[1], v[3], v[2]] {
            let p = ts.select(op).unwrap();
            ts.commit(p, op);
            let n = ts.node_of[op.index()].unwrap();
            let node = &ts.nodes[n as usize];
            assert_eq!(
                node.sdist + node.tdist - node.delay,
                p.cost,
                "select's cost must equal the committed distance of {op}"
            );
        }
    }

    #[test]
    fn no_compatible_unit_is_reported() {
        let g = bench_graphs::hal();
        let muls: Vec<OpId> = g
            .op_ids()
            .filter(|&v| g.kind(v) == hls_ir::OpKind::Mul)
            .collect();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(2, 0)).unwrap();
        assert!(matches!(
            ts.schedule(muls[0]),
            Err(SchedError::NoCompatibleUnit(_, hls_ir::OpKind::Mul))
        ));
    }

    #[test]
    fn unknown_op_is_reported() {
        let (mut ts, _) = fig1_scheduler();
        let bogus = OpId::from_index(999);
        assert_eq!(ts.schedule(bogus), Err(SchedError::UnknownOp(bogus)));
    }

    #[test]
    fn typed_threads_respect_compatibility() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 2);
        let order = hls_ir::algo::topo_order(&g).unwrap();
        let mut ts = ThreadedScheduler::new(g, r).unwrap();
        ts.schedule_all(order).unwrap();
        ts.check_invariants().unwrap();
        for v in ts.graph().op_ids() {
            let k = ts.thread_of(v).unwrap();
            assert!(
                ts.resources().compatible(k, ts.graph().kind(v)),
                "{v} on incompatible thread {k}"
            );
        }
    }

    #[test]
    fn diameter_is_monotone_under_scheduling() {
        let g = bench_graphs::ewf();
        let order = hls_ir::algo::topo_order(&g).unwrap();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(2, 1)).unwrap();
        let mut last = 0;
        for v in order {
            ts.schedule(v).unwrap();
            let d = ts.diameter();
            assert!(d >= last, "Lemma 4 violated at {v}");
            last = d;
        }
    }

    #[test]
    fn extract_hard_matches_state_diameter_and_validates() {
        let g = bench_graphs::fir();
        let r = ResourceSet::classic(2, 2);
        let order = hls_ir::algo::topo_order(&g).unwrap();
        let mut ts = ThreadedScheduler::new(g, r.clone()).unwrap();
        ts.schedule_all(order).unwrap();
        let hard = ts.extract_hard();
        assert_eq!(hard.length(ts.graph()), ts.diameter());
        hls_ir::schedule::validate(ts.graph(), &r, &hard).unwrap();
    }

    #[test]
    fn wire_ops_get_singleton_threads() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let w = g.add_op(OpKind::WireDelay, 1, "w");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, w).unwrap();
        g.add_edge(w, b).unwrap();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(1, 0)).unwrap();
        ts.schedule_all([a, w, b]).unwrap();
        ts.check_invariants().unwrap();
        assert_eq!(ts.thread_count(), 2);
        assert_eq!(ts.thread_of(w), Some(1));
        assert_eq!(ts.diameter(), 3);
        let hard = ts.extract_hard();
        assert_eq!(hard.unit(w), None);
        assert_eq!(hard.start(b), Some(2));
    }

    #[test]
    fn refine_splice_absorbs_a_spill() {
        // Figure 1(c) scenario: spill the value of vertex 3; the threaded
        // schedule stretches from 5 to 6 states (the paper's number).
        let (mut ts, v) = fig1_scheduler();
        for (op, thread) in [
            (v[2], 0),
            (v[3], 0),
            (v[5], 0),
            (v[6], 0),
            (v[0], 1),
            (v[1], 1),
            (v[4], 1),
        ] {
            let placements = ts.feasible_placements(op).unwrap();
            let p = placements.iter().filter(|p| p.thread == thread).last().copied().unwrap();
            ts.commit(p, op);
        }
        assert_eq!(ts.diameter(), 5);
        let inserted = ts
            .refine_splice(
                v[2],
                v[3],
                [
                    (OpKind::WireDelay, 1, "st".to_string()),
                    (OpKind::WireDelay, 1, "ld".to_string()),
                ],
            )
            .unwrap();
        assert_eq!(inserted.len(), 2);
        ts.check_invariants().unwrap();
        assert_eq!(ts.diameter(), 6, "paper: spill stretches 5 -> 6 states");
    }

    #[test]
    fn refine_add_op_rejects_cycles() {
        let (mut ts, v) = fig1_scheduler();
        ts.schedule_all(v).unwrap();
        let err = ts.refine_add_op(OpKind::Add, 1, "bad", &[v[6]], &[v[0]]);
        assert!(matches!(err, Err(SchedError::WouldCycle(_))));
    }

    #[test]
    fn state_dot_shows_threads_and_both_edge_styles() {
        let (mut ts, v) = fig1_scheduler();
        ts.schedule_all(v).unwrap();
        let dot = ts.state_to_dot("fig1");
        assert!(dot.starts_with("digraph \"fig1\""));
        assert!(dot.contains("style=solid"), "chain edges present");
        assert!(dot.contains("thr 0"));
        assert!(dot.contains("thr 1"));
        // No sentinels leak into the rendering: node count = 7.
        assert_eq!(dot.matches("fillcolor").count(), 7);
    }

    #[test]
    fn snapshot_spans_exactly_the_scheduled_ops() {
        let (mut ts, v) = fig1_scheduler();
        ts.schedule(v[0]).unwrap();
        ts.schedule(v[2]).unwrap();
        let snap = ts.snapshot();
        assert_eq!(snap.graph.len(), 2);
        assert_eq!(snap.ops.len(), 2);
        assert!(snap.ops.contains(&v[0]));
        assert!(snap.ops.contains(&v[2]));
    }
}
