//! The threaded scheduler — Algorithm 1 of the paper.
//!
//! The scheduling state is a *threaded graph* (Definition 4): its vertices
//! are partitioned into `K` threads — one per functional unit — such that
//! each thread is totally ordered. Internally every thread is a doubly
//! linked chain between two sentinels (`s[k]`, `t[k]`, exactly as in the
//! paper's `ThreadedGraph` constructor), and every vertex keeps at most
//! one incoming and one outgoing *cross edge per thread* (the compression
//! that yields the degree bound of Lemma 7 and the linear complexity of
//! Theorem 3).
//!
//! Three clarifications relative to the paper's pseudocode are documented
//! in `DESIGN.md` §3: the inclusive distance convention, the per-thread
//! *feasible window* (computed from the state order, not just immediate
//! chain neighbours) and tight-edge hygiene in `commit` when several
//! ancestors share a thread.
//!
//! # Incremental engine
//!
//! This implementation meets the Theorem 3 per-operation bound in
//! practice (see `DESIGN.md` §4 and the `bench_json` study). Compared to
//! the frozen [`crate::ReferenceScheduler`] seed it differs only in
//! *how* the same state is computed:
//!
//! * node storage is structure-of-arrays (`inc[n·stride + j]`) instead
//!   of per-node heap vectors;
//! * chain positions are *gap numbered* (spacing `2³²`, midpoint
//!   insertion), so renumbering is amortized `O(1)` instead of a full
//!   chain walk per commit;
//! * `sdist`/`tdist` are maintained by increase-only worklist relaxation
//!   over the affected cone instead of a full `relabel()` per commit;
//! * every node carries *reach vectors* — its latest per-thread
//!   state-ancestor and earliest per-thread state-descendant — so
//!   `select` computes its feasible windows from the scheduled frontier
//!   in `O(K²)` instead of marking the whole state;
//! * behavior-graph reachability is a chain-cover index
//!   ([`hls_ir::ReachIndex`], `O(|V| · #chains)` memory) instead of the
//!   dense `Θ(|V|²)`-bit ancestor/descendant closure matrices the seed
//!   carries; the frontier walk's "any scheduled ancestor/descendant"
//!   pruning probes compare the per-op chain vectors against per-chain
//!   scheduled-position extrema in `O(#chains)` (see `DESIGN.md` §5);
//! * `sync_graph_growth` repairs that index locally for the spliced
//!   vertices instead of recomputing (or widening) a full transitive
//!   closure.
//!
//! The golden-equivalence suite (`tests/golden_equivalence.rs`) pins the
//! observable behavior — placement sequences and extracted schedules —
//! to the reference implementation.

use crate::{SchedError, soft::StateSnapshot};
use hls_ir::{
    ChainExtrema, HardSchedule, OpId, OpKind, PrecedenceGraph, ReachIndex, ResourceClass,
    ResourceSet,
};
use std::cell::RefCell;
use std::sync::Arc;

/// Missing-edge / missing-node sentinel in the flat edge and reach
/// tables.
const NONE: u32 = u32::MAX;

/// The immutable graph-side state of a scheduler: the behavior graph,
/// the chain-cover reachability index over it, and its static sink
/// distances. Everything in here is a pure function of the *behavior*
/// — it never changes while operations are merely scheduled, only
/// under behavior-extending refinement (splice, add-op, retype). The
/// scheduler holds it behind an [`Arc`] so clones (portfolio runs,
/// parallel-stitch materialisation, serve-cache templates) share one
/// copy; refinement goes through [`Arc::make_mut`] copy-on-write.
#[derive(Clone, Debug)]
struct GraphCore {
    g: PrecedenceGraph,
    /// Chain-cover reachability index over the behavior graph —
    /// `O(|V| · #chains)` memory instead of the seed's two dense
    /// `Θ(|V|²)`-bit closure matrices — repaired locally under
    /// refinement.
    reach: ReachIndex,
    /// Static behavior-graph sink distances `‖v→‖_G` (inclusive),
    /// indexed by op — the tail term of the final-diameter lower
    /// bound. Recomputed on graph growth and delay retyping (cold
    /// paths).
    gdist: Vec<u64>,
}

/// `(sdist, tdist, reach_b, reach_f)` of a from-scratch recomputation.
type FullLabels = (Vec<u64>, Vec<u64>, Vec<u32>, Vec<u32>);

/// Gap between freshly numbered chain positions. Midpoint insertion
/// needs ~32 inserts into the same gap before a chain renumber; tail
/// inserts extend the numbering instead and never exhaust it.
const GAP: u64 = 1 << 32;

/// How a budgeted [`ThreadedScheduler::schedule_all_until`] /
/// [`ThreadedScheduler::schedule_all_budgeted`] run ended.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Every operation of the order was scheduled.
    Completed,
    /// The abort hook fired; `scheduled` operations had been fed
    /// (including the one whose commit triggered the hook).
    Aborted {
        /// Operations scheduled before the abort.
        scheduled: usize,
    },
    /// The run's [`hls_ir::Budget`] expired — wall deadline or step
    /// quota — before the order was exhausted. Cooperative
    /// cancellation: the budget is checked after every commit, so the
    /// run stops within one commit of its deadline.
    DeadlineExpired {
        /// Operations committed before the budget expired.
        scheduled: usize,
    },
}

/// Where `select` decided to put an operation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Placement {
    /// Thread (functional-unit) index.
    pub thread: usize,
    /// The operation after which the new vertex is inserted; `None` means
    /// the head of the thread (right after the `s[k]` sentinel).
    pub after: Option<OpId>,
    /// The distance `‖←v→‖` the new vertex will have — by Theorem 2 also
    /// the diameter of the new state if it exceeds the old diameter.
    pub cost: u64,
}

/// Hot per-node scalar labels, packed so the chain walks (`select`'s
/// window scan, the commit-time `sdist` cascade, gap renumbering) pay
/// one cache-line fill per node instead of one per parallel array.
#[derive(Clone, Copy, Debug, Default)]
struct NodeHot {
    /// Gap-numbered chain position (order within the thread is all
    /// that is observable; values are never exported).
    pos: u64,
    /// Longest state-graph source distance, inclusive of own delay.
    sdist: u64,
    /// The operation's delay (sentinels: 0).
    delay: u64,
}

/// Reusable, epoch-stamped scratch space for the hot path. Owning these
/// buffers (instead of allocating per call) is what makes
/// `select`/`commit` allocation-free in steady state.
#[derive(Clone, Debug, Default)]
struct Scratch {
    /// Visitation epoch; bumping it invalidates all stamps at once.
    epoch: u32,
    /// Per op: last epoch the frontier walk saw it.
    op_seen: Vec<u32>,
    /// Frontier walk stack (op indices).
    stack: Vec<u32>,
    /// Scheduled frontier on the predecessor side (node ids).
    preds_f: Vec<u32>,
    /// Scheduled frontier on the successor side (node ids).
    succs_f: Vec<u32>,
    /// Per thread: the latest state-ancestor node (window lower bound).
    lo: Vec<u32>,
    /// Per thread: the earliest state-descendant node (window upper
    /// bound).
    hi: Vec<u32>,
    /// Worklist for label/reach propagation (node ids).
    queue: Vec<u32>,
    /// Per node: whether it currently sits in `queue` — dedup for the
    /// propagation worklists (a node improved through several in-edges
    /// is rescanned once, not once per improvement).
    in_queue: Vec<bool>,
    /// One node's effective reach row, copied out so the merge loop
    /// runs slice-to-slice (no re-reads through the strided table).
    row: Vec<u32>,
}

/// Lazily maintained sink distances.
///
/// A tail commit raises `tdist` for nearly *all* of its state-ancestors
/// — eagerly repairing them is `Θ(|V|²)` over a run, even though the
/// hot path only ever reads `tdist` near the chain tails. So commits
/// just *invalidate* the backward cone (stopping at already-dirty
/// nodes, amortized `O(K)`), and readers repair exactly the dirty
/// forward cone of the nodes they touch. Values observable through the
/// API are always exact.
#[derive(Clone, Debug, Default)]
struct TdistLazy {
    val: Vec<u64>,
    dirty: Vec<bool>,
    /// Reusable traversal stacks for invalidation and repair.
    stack: Vec<u32>,
}

/// The threaded (soft) scheduler: an online automaton that adds one
/// operation at a time to a threaded scheduling state.
///
/// See the [crate docs](crate) and the paper's Section 4. The scheduler
/// owns a working copy of the precedence graph so that [`refinement
/// operations`](Self::refine_splice) can extend the behavior (spill code,
/// wire delays) and the state coherently.
#[derive(Clone, Debug)]
pub struct ThreadedScheduler {
    /// The immutable graph-side core — behavior graph, reachability
    /// index, static sink distances — shared (`Arc`) across scheduler
    /// clones: a portfolio of runs over one behavior, or the parallel
    /// scheduler's stitched state, pays for the graph and its index
    /// once. Refinement operations that *do* extend the behavior
    /// (splice, add-op, retype, index growth) go through
    /// [`Arc::make_mut`] — copy-on-write, so divergent clones stay
    /// isolated while read-only clones stay free.
    core: Arc<GraphCore>,
    /// Per-chain scheduled-position extrema, maintained with one
    /// `O(1)` insert per commit. `select`'s frontier-walk pruning
    /// probes the set through [`ReachIndex::set_reaches`] /
    /// [`ReachIndex::set_reached_by`] in `O(#chains)`.
    sched_extrema: ChainExtrema,
    resources: ResourceSet,
    /// Cached state diameter `max(sdist)`. `sdist` labels only grow
    /// under scheduling (Lemma 4; delay retyping relabels and
    /// recomputes), so the cache is a running maximum — this makes
    /// [`ThreadedScheduler::diameter`] `O(1)`, cheap enough for the
    /// per-operation early-abort probes of
    /// [`ThreadedScheduler::schedule_all_until`].
    diam: u64,
    /// Running maximum of `sdist(a) − D(a) + ‖a→‖_G` over scheduled
    /// ops: a certified lower bound on the diameter any *completed*
    /// run extending this state must reach (every graph descendant of
    /// `a` still has to be ordered after it — the correctness
    /// condition). Much tighter than the prefix diameter early in a
    /// run; see [`ThreadedScheduler::final_lower_bound`].
    proj: u64,
    /// Static resource floor: for every group of operations sharing
    /// the same compatible-unit set, the group's delay-sum divided by
    /// the unit count. Any completed schedule serialises that work on
    /// those units, so its diameter is at least the floor — the
    /// binding term of the lower bound on resource-bound workloads.
    res_floor: u64,
    // ---- structure-of-arrays node storage ----
    /// Per node: its thread.
    n_thread: Vec<u32>,
    /// Per node: packed hot labels (chain position, source distance,
    /// delay) — see [`NodeHot`].
    nh: Vec<NodeHot>,
    /// Sink distances, lazily repaired (see [`TdistLazy`]). Interior
    /// mutability lets `&self` readers (`select`,
    /// `feasible_placements`) repair on demand; they must not be
    /// re-entered from the placement callback.
    n_tdist: RefCell<TdistLazy>,
    /// Flat edge tables: `inc[n·stride + j]` is the node in thread `j`
    /// with an edge into `n` (or [`NONE`]).
    inc: Vec<u32>,
    out: Vec<u32>,
    /// Reach vectors: `reach_b[n·stride + j]` is the latest (max `pos`)
    /// thread-`j` state-ancestor of `n`; `reach_f` the earliest
    /// state-descendant. [`NONE`] when the thread holds no such node.
    reach_b: Vec<u32>,
    reach_f: Vec<u32>,
    /// Row width of the flat tables; `>= threads`, grown by doubling
    /// when wire threads are pushed.
    stride: usize,
    /// Per thread: source/sink sentinel node indices.
    sent_s: Vec<u32>,
    sent_t: Vec<u32>,
    /// Per op: its node, if scheduled.
    node_of: Vec<Option<u32>>,
    /// Per node: its op (`None` for sentinels).
    op_of: Vec<Option<OpId>>,
    /// Number of threads (resource units plus wire singleton threads).
    threads: usize,
    /// Set when a commit panicked mid-update (e.g. under fault
    /// injection): the state may violate its invariants, so every
    /// subsequent scheduling call short-circuits to
    /// [`SchedError::Poisoned`] instead of computing on corrupt data.
    poisoned: Option<String>,
    /// Sum of all node delays — an upper bound on any legal `sdist`,
    /// used to fail fast (like the seed's per-commit relabel assert)
    /// if an invalid placement ever closes a state cycle.
    total_delay: u64,
    history: Vec<OpId>,
    scratch: RefCell<Scratch>,
}

impl ThreadedScheduler {
    /// Creates a scheduler over `g` with one thread per unit of
    /// `resources`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Ir`] if `g` is cyclic.
    pub fn new(g: PrecedenceGraph, resources: ResourceSet) -> Result<Self, SchedError> {
        g.validate()?;
        let reach = ReachIndex::try_build(&g)?;
        let sched_extrema = ChainExtrema::empty(&reach);
        let gdist = hls_ir::algo::sink_distances(&g);
        let k = resources.k();
        let mut ts = ThreadedScheduler {
            node_of: vec![None; g.len()],
            core: Arc::new(GraphCore { g, reach, gdist }),
            sched_extrema,
            resources,
            diam: 0,
            proj: 0,
            res_floor: 0,
            n_thread: Vec::with_capacity(2 * k),
            nh: Vec::new(),
            n_tdist: RefCell::new(TdistLazy::default()),
            inc: Vec::new(),
            out: Vec::new(),
            reach_b: Vec::new(),
            reach_f: Vec::new(),
            stride: k.max(1),
            sent_s: Vec::with_capacity(k),
            sent_t: Vec::with_capacity(k),
            op_of: Vec::new(),
            threads: 0,
            poisoned: None,
            total_delay: 0,
            history: Vec::new(),
            scratch: RefCell::new(Scratch::default()),
        };
        for _ in 0..k {
            ts.push_thread();
        }
        ts.res_floor = ts.resource_floor();
        Ok(ts)
    }

    /// Returns this scheduler to the pristine state of `template` *in
    /// place*, keeping every grown buffer's capacity — the arena move
    /// behind the search crate's per-worker run reuse: a race run that
    /// schedules `|V|` ops grows ~10 per-node tables through their
    /// doubling ladders, and resetting instead of cloning makes every
    /// run after a worker's first allocation-free.
    ///
    /// Returns `false` (and changes nothing) when reuse would not be
    /// bit-identical to `template.clone()`: the state was poisoned
    /// mid-commit, its graph diverged from the template's (refinement
    /// grows the graph copy-on-write), or the resources differ. Callers
    /// fall back to cloning in that case.
    pub fn reset_to(&mut self, template: &ThreadedScheduler) -> bool {
        if self.poisoned.is_some()
            || !Arc::ptr_eq(&self.core, &template.core)
            || self.resources != template.resources
        {
            return false;
        }
        self.node_of.iter_mut().for_each(|s| *s = None);
        self.sched_extrema.clear(&self.core.reach);
        self.diam = 0;
        self.proj = 0;
        // `res_floor` is a pure function of graph + resources: keep it.
        self.n_thread.clear();
        self.nh.clear();
        {
            let lz = self.n_tdist.get_mut();
            lz.val.clear();
            lz.dirty.clear();
            lz.stack.clear();
        }
        self.inc.clear();
        self.out.clear();
        self.reach_b.clear();
        self.reach_f.clear();
        // A wider stride (wire threads) only pads rows; keep it.
        self.sent_s.clear();
        self.sent_t.clear();
        self.op_of.clear();
        self.threads = 0;
        self.total_delay = 0;
        self.history.clear();
        // Scratch buffers are epoch-stamped; stale stamps never match a
        // fresh epoch, so they carry over as-is.
        for _ in 0..self.resources.k() {
            self.push_thread();
        }
        true
    }

    /// The scheduler's working copy of the precedence graph (grows under
    /// refinement).
    pub fn graph(&self) -> &PrecedenceGraph {
        &self.core.g
    }

    /// The functional-unit allocation.
    pub fn resources(&self) -> &ResourceSet {
        &self.resources
    }

    /// Current number of threads, including wire singleton threads.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// `true` if `v` is already in the scheduling state.
    pub fn is_scheduled(&self, v: OpId) -> bool {
        self.node_of.get(v.index()).copied().flatten().is_some()
    }

    /// Number of scheduled operations.
    pub fn scheduled_count(&self) -> usize {
        self.history.len()
    }

    /// The operations in the order they were scheduled.
    pub fn history(&self) -> &[OpId] {
        &self.history
    }

    /// The thread of a scheduled operation.
    pub fn thread_of(&self, v: OpId) -> Option<usize> {
        self.node_of
            .get(v.index())
            .copied()
            .flatten()
            .map(|n| self.n_thread[n as usize] as usize)
    }

    /// The operations of thread `k` in chain order.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.thread_count()`.
    pub fn chain(&self, k: usize) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut cur = self.out[self.sent_s[k] as usize * self.stride + k];
        while cur != NONE {
            if cur == self.sent_t[k] {
                break;
            }
            out.push(self.op_of[cur as usize].expect("chain nodes are real ops"));
            cur = self.out[cur as usize * self.stride + k];
        }
        out
    }

    /// The diameter `‖S‖` of the scheduling state — the critical-path
    /// delay-sum including all artificial serialisation edges. By
    /// Lemma 4 this is monotone under scheduling. `O(1)` (cached
    /// running maximum of the `sdist` labels).
    pub fn diameter(&self) -> u64 {
        self.diam
    }

    /// A certified lower bound on the diameter of any *completed*
    /// schedule extending the current state: the maximum of
    ///
    /// * the current diameter (monotone, Lemma 4);
    /// * the *projection* — over scheduled ops `a`,
    ///   `sdist(a) − D(a) + ‖a→‖_G` (every graph descendant of `a`,
    ///   scheduled yet or not, must end up ordered after `a` by the
    ///   correctness condition, so the longest behavior-graph tail out
    ///   of `a` is still owed) — the binding term on latency-bound
    ///   workloads;
    /// * the static resource floor (work per compatible-unit set) —
    ///   the binding term on resource-bound workloads.
    ///
    /// `O(1)` — all terms are cached maxima.
    ///
    /// This is what the early-abort hook of
    /// [`ThreadedScheduler::schedule_all_until`] reports: it lets a
    /// portfolio run prove it cannot beat an incumbent long before its
    /// prefix diameter says so.
    pub fn final_lower_bound(&self) -> u64 {
        self.diam.max(self.proj).max(self.res_floor)
    }

    /// A certified lower bound on *any* complete schedule of the
    /// behavior under the current resources, independent of this
    /// state: the behavior-graph diameter folded with the resource
    /// floor. A schedule whose length equals this value is provably
    /// optimal — the portfolio uses that certificate to skip futile
    /// refinement rounds.
    pub fn schedule_lower_bound(&self) -> u64 {
        self.res_floor
            .max(self.core.gdist.iter().copied().max().unwrap_or(0))
    }

    /// The distance `‖←v→‖ = sdist(v) + tdist(v) − D(v)` of a scheduled
    /// operation — the length of the longest state path through `v`.
    /// `None` if `v` is unscheduled or out of range. An operation is
    /// *critical* when its distance equals [`ThreadedScheduler::diameter`];
    /// `diameter − distance` is its slack, the selection key of the
    /// critical-cone extraction in the portfolio's refinement loop.
    pub fn distance(&self, v: OpId) -> Option<u64> {
        let n = self.node_of.get(v.index()).copied().flatten()?;
        Some(self.nh[n as usize].sdist + self.tdist_of(n) - self.nh[n as usize].delay)
    }

    /// The chain-cover reachability index the scheduler maintains over
    /// its working behavior graph (kept exact under refinement growth).
    /// Exposed so portfolio-level tooling can run `O(#chains)` set
    /// probes — e.g. [`ReachIndex::convex_closure`] for critical-cone
    /// extraction — without rebuilding the index.
    pub fn reach_index(&self) -> &ReachIndex {
        &self.core.reach
    }

    /// Schedules one operation: `select` then `commit` (the paper's
    /// `schedule` method). Scheduling an operation already in the state
    /// is a no-op returning its current placement (Definition 3's
    /// incremental condition).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::UnknownOp`] for out-of-range ids,
    /// [`SchedError::NoCompatibleUnit`] if no thread can execute the
    /// operation, and [`SchedError::Poisoned`] if a previous commit
    /// panicked (the panic is caught here — it never crosses this
    /// boundary — but the state is permanently unusable afterwards).
    pub fn schedule(&mut self, v: OpId) -> Result<Placement, SchedError> {
        self.check_poisoned()?;
        if v.index() >= self.core.g.len() {
            return Err(SchedError::UnknownOp(v));
        }
        if let Some(n) = self.node_of[v.index()] {
            let after = self.chain_pred_op(n);
            return Ok(Placement {
                thread: self.n_thread[n as usize] as usize,
                after,
                cost: self.nh[n as usize].sdist + self.tdist_of(n) - self.nh[n as usize].delay,
            });
        }
        self.schedule_isolated(v, false)
    }

    /// `true` once a commit panicked and left the state unusable; see
    /// [`SchedError::Poisoned`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    fn check_poisoned(&self) -> Result<(), SchedError> {
        match &self.poisoned {
            Some(msg) => Err(SchedError::Poisoned(msg.clone())),
            None => Ok(()),
        }
    }

    /// Runs one select+commit under `catch_unwind`: a panic mid-commit
    /// (a bug, or the fault-injection harness) may leave the linked
    /// chains and labels inconsistent, so it poisons the scheduler and
    /// surfaces as [`SchedError::Poisoned`] instead of unwinding
    /// through the public API.
    fn schedule_isolated(&mut self, v: OpId, late: bool) -> Result<Placement, SchedError> {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if self.core.g.kind(v).resource_class() == ResourceClass::Wire {
                return self.schedule_wire(v);
            }
            let placement = if late { self.select_late(v)? } else { self.select(v)? };
            // `select` just walked the scheduled frontier of `v` and the
            // state is unchanged since, so `commit` can reuse it instead
            // of re-walking (the walk is the probe-heavy half of commit).
            self.commit_inner(placement, v, true);
            Ok(placement)
        }));
        match attempt {
            Ok(result) => result,
            Err(payload) => {
                let msg = crate::panic_message(payload.as_ref());
                self.poisoned = Some(msg.clone());
                Err(SchedError::Poisoned(msg))
            }
        }
    }

    /// Schedules every operation of `order` in sequence.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SchedError`] encountered.
    pub fn schedule_all(
        &mut self,
        order: impl IntoIterator<Item = OpId>,
    ) -> Result<(), SchedError> {
        for v in order {
            self.schedule(v)?;
        }
        Ok(())
    }

    /// Like [`ThreadedScheduler::schedule_all`], but with an
    /// early-abort hook: after every scheduled operation, `abort` is
    /// called with the current
    /// [`final-diameter lower bound`](ThreadedScheduler::final_lower_bound);
    /// returning `true` stops the run and reports how far it got.
    ///
    /// This is the budget hook behind the parallel portfolio
    /// scheduler (`hls-search`): the bound is monotone under
    /// scheduling and certified (a completed extension of this state
    /// can never beat it), so a run whose bound already rules out
    /// beating a completed rival's diameter can abort without changing
    /// the portfolio's result — the portfolio threads an atomic
    /// incumbent into this callback and losing runs stop paying for
    /// themselves. The hook is `O(1)` per operation on top of the
    /// schedule itself.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SchedError`] encountered.
    pub fn schedule_all_until(
        &mut self,
        order: impl IntoIterator<Item = OpId>,
        abort: impl FnMut(u64) -> bool,
    ) -> Result<RunOutcome, SchedError> {
        self.schedule_all_budgeted(order, &hls_ir::Budget::NONE, abort)
    }

    /// The fully budgeted run: [`ThreadedScheduler::schedule_all_until`]
    /// plus a cooperative [`hls_ir::Budget`]. The budget is checked
    /// before *every* commit, so a run never overshoots its deadline
    /// by more than the one commit in flight:
    ///
    /// * an already-expired budget commits nothing and returns
    ///   [`RunOutcome::DeadlineExpired`] with `scheduled: 0`;
    /// * a step quota of `q` commits exactly `min(q, |order|)`
    ///   operations — deterministic across machines and thread counts
    ///   (the quota is per-run, not global);
    /// * a wall deadline stops at the first commit that observes it
    ///   (through the fault-injectable clock).
    ///
    /// # Errors
    ///
    /// Propagates the first [`SchedError`] encountered.
    pub fn schedule_all_budgeted(
        &mut self,
        order: impl IntoIterator<Item = OpId>,
        budget: &hls_ir::Budget,
        mut abort: impl FnMut(u64) -> bool,
    ) -> Result<RunOutcome, SchedError> {
        for (fed, v) in order.into_iter().enumerate() {
            if budget.expired(fed as u64) {
                return Ok(RunOutcome::DeadlineExpired { scheduled: fed });
            }
            self.schedule(v)?;
            if abort(self.final_lower_bound()) {
                return Ok(RunOutcome::Aborted { scheduled: fed + 1 });
            }
        }
        Ok(RunOutcome::Completed)
    }

    /// The paper's `select`: finds the feasible insertion position
    /// minimising the distance of the new vertex — hence, by Theorem 2,
    /// the diameter of the resulting state — without speculative commits
    /// and without touching nodes outside the feasible windows.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedScheduler::schedule`].
    pub fn select(&self, v: OpId) -> Result<Placement, SchedError> {
        self.select_impl(v, false)
    }

    /// Like [`ThreadedScheduler::select`], but among cost-tied optimal
    /// positions prefers the *last* one in scan order (latest chain
    /// position). Online optimality is unaffected (Theorem 2 fixes only
    /// the cost); the bias matters for register pressure: spill reloads
    /// scheduled late keep their values in memory longest.
    pub fn select_late(&self, v: OpId) -> Result<Placement, SchedError> {
        self.select_impl(v, true)
    }

    /// The shared body of [`ThreadedScheduler::select`] /
    /// [`ThreadedScheduler::select_late`]: the window scan of
    /// [`Self::for_each_feasible`], walked *backward* with monotone
    /// pruning. Along a thread chain `tdist` is non-increasing (each
    /// chain edge is a precedence), so scanning candidates from the
    /// window's tail toward its head makes the `tdist(next)` cost term
    /// non-decreasing, and every remaining candidate costs at least
    /// `isrc + tdist(next) ⊔ isnk + delay`. Once that floor can no
    /// longer beat the incumbent, the rest of the thread's window is
    /// skipped — on tail-heavy workloads (a topological order feeding
    /// empty-descendant windows) this collapses the scan from the full
    /// window to a handful of candidates. Scanning backward also means
    /// each candidate's `tdist` repair is the previous candidate's
    /// node, so the lazy repairs hit their clean fast path.
    ///
    /// Tie handling mirrors the forward scan exactly: `select` keeps
    /// the *earliest* minimal position (backward: ties replace, prune
    /// only at `floor > best`), `select_late` the *latest* (backward:
    /// first minimum sticks, prune at `floor ≥ best`). Both stay
    /// bit-identical to the exhaustive forward scan — pinned by the
    /// Theorem 2 oracle tests and the golden-equivalence suite.
    fn select_impl(&self, v: OpId, late: bool) -> Result<Placement, SchedError> {
        hls_obs::obs_count!(SelectCalls);
        if v.index() >= self.core.g.len() {
            return Err(SchedError::UnknownOp(v));
        }
        let kind = self.core.g.kind(v);
        if !(0..self.resources.k()).any(|k| self.resources.compatible(k, kind)) {
            return Err(SchedError::NoCompatibleUnit(v, kind));
        }
        let mut sc = self.scratch.take();
        self.prep_scratch(&mut sc);
        self.collect_frontiers(v, &mut sc);
        let (isrc, isnk) = self.absorb_windows(&mut sc);
        let delay = self.core.g.delay(v);
        let s = self.stride;
        let mut best: Option<Placement> = None;
        // One borrow of the lazy-tdist cell for the whole scan instead
        // of one per candidate.
        let mut lz = self.n_tdist.borrow_mut();
        for k in 0..self.resources.k() {
            if !self.resources.compatible(k, kind) {
                continue;
            }
            // The window's insertion points are `lo..hi` (exclusive at
            // `hi`): insert-after nodes from the latest state-ancestor
            // (or the head sentinel) up to just before the earliest
            // state-descendant (or the tail sentinel's predecessor).
            let lo = if sc.lo[k] != NONE { sc.lo[k] } else { self.sent_s[k] };
            let lo_pos = self.nh[lo as usize].pos;
            // First candidate pair from the tail: `next` is the window's
            // upper bound, `cur` its chain predecessor.
            let mut next = if sc.hi[k] != NONE { sc.hi[k] } else { self.sent_t[k] };
            let mut cur = self.inc[next as usize * s + k];
            debug_assert_ne!(cur, NONE, "chains are closed by sentinels");
            while self.nh[cur as usize].pos >= lo_pos {
                let sd = self.nh[cur as usize].sdist.max(isrc);
                self.repair_tdist(&mut lz, next);
                let raw_td = lz.val[next as usize];
                let cost = sd + raw_td.max(isnk) + delay;
                // The forward scan's update rules pick, among minimal
                // costs, the lexicographically earliest (thread, pos)
                // for `select` and the latest for `select_late`.
                // Threads are still visited in ascending order, but
                // positions arrive in descending order, so ties within
                // the *same* thread now replace for `select` (the later
                // visit is the earlier position) and stick for
                // `select_late`; cross-thread ties keep the earlier
                // thread for `select` and take the later for
                // `select_late` — exactly the forward semantics.
                let better = match best {
                    None => true,
                    Some(b) => {
                        cost < b.cost
                            || (cost == b.cost && if late { k > b.thread } else { k == b.thread })
                    }
                };
                if better {
                    best = Some(Placement {
                        thread: k,
                        after: self.op_of[cur as usize],
                        cost,
                    });
                }
                if cur == lo {
                    break;
                }
                next = cur;
                cur = self.inc[cur as usize * s + k];
                debug_assert_ne!(cur, NONE, "window stays above the head sentinel");
                if let Some(b) = best {
                    // Monotone floor for every remaining candidate in
                    // this thread: `tdist` only grows walking backward,
                    // and along the chain edge `next → old next` the
                    // (possibly still dirty) new `next` satisfies
                    // `tdist(next) ≥ delay(next) + tdist(old next)`, so
                    // the just-repaired old value gives a sound bound
                    // without repairing `next` yet. Prune once no
                    // remaining candidate can become the winner under
                    // the tie rules above.
                    let lb_td = raw_td + self.nh[next as usize].delay;
                    let floor = isrc + lb_td.max(isnk) + delay;
                    let dead = if late {
                        floor > b.cost || (floor == b.cost && k <= b.thread)
                    } else {
                        floor > b.cost || (floor == b.cost && k != b.thread)
                    };
                    if dead {
                        break;
                    }
                }
            }
        }
        drop(lz);
        self.scratch.replace(sc);
        best.ok_or(SchedError::NoCompatibleUnit(v, self.core.g.kind(v)))
    }

    /// Schedules `v` at the latest cost-optimal position (see
    /// [`ThreadedScheduler::select_late`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedScheduler::schedule`].
    pub fn schedule_late(&mut self, v: OpId) -> Result<Placement, SchedError> {
        self.check_poisoned()?;
        if v.index() >= self.core.g.len() {
            return Err(SchedError::UnknownOp(v));
        }
        if self.is_scheduled(v) {
            return self.schedule(v);
        }
        self.schedule_isolated(v, true)
    }

    /// Every feasible placement for `v` with its cost, in deterministic
    /// (thread, position) order. Used by the exhaustive oracle and by
    /// tests of Theorem 2.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedScheduler::schedule`].
    pub fn feasible_placements(&self, v: OpId) -> Result<Vec<Placement>, SchedError> {
        let mut out = Vec::new();
        self.for_each_feasible(v, |p| out.push(p))?;
        Ok(out)
    }

    /// Commits a placement produced by [`ThreadedScheduler::select`] or
    /// [`ThreadedScheduler::feasible_placements`] — the paper's `commit`
    /// with the Figure 2 update rules, followed by incremental label and
    /// reach propagation over the affected cone only.
    ///
    /// # Panics
    ///
    /// Panics if the placement refers to an unknown thread or an
    /// operation that is not in that thread (placements must come from
    /// this scheduler's `select`/`feasible_placements` on the current
    /// state).
    pub fn commit(&mut self, placement: Placement, v: OpId) {
        self.commit_inner(placement, v, false);
    }

    /// [`ThreadedScheduler::commit`] body. With `frontier_ready` the
    /// scheduled-frontier vectors already sitting in the scratch are
    /// trusted (set by the `select` that produced `placement`, against
    /// this exact state) instead of being recomputed — the internal
    /// select-then-commit path uses this; the public entry never does.
    fn commit_inner(&mut self, placement: Placement, v: OpId, frontier_ready: bool) {
        hls_obs::obs_count!(CommitCalls);
        // Fault-injection hook: a no-op unless the test harness armed
        // a plan (and always in release builds).
        hls_ir::faultinject::tick_commit();
        assert!(placement.thread < self.threads, "unknown thread");
        let k = placement.thread;
        let s = self.stride;
        let pos_node = match placement.after {
            None => self.sent_s[k],
            Some(op) => {
                let n = self.node_of[op.index()].expect("placement.after must be scheduled");
                assert_eq!(
                    self.n_thread[n as usize] as usize, k,
                    "after-op not in thread"
                );
                n
            }
        };
        let n = self.alloc_raw_node(k, self.core.g.delay(v));

        // Chain insertion after pos_node, with gap-numbered positions.
        let next = self.out[pos_node as usize * s + k];
        assert_ne!(next, NONE, "chain is closed by sentinels");
        self.out[n as usize * s + k] = next;
        self.inc[next as usize * s + k] = n;
        self.out[pos_node as usize * s + k] = n;
        self.inc[n as usize * s + k] = pos_node;
        self.assign_pos(n, pos_node, next, k);

        self.node_of[v.index()] = Some(n);
        self.op_of[n as usize] = Some(v);
        self.sched_extrema.insert(&self.core.reach, v.index());

        // Figure 2 rules for the scheduled frontier (dominated ancestors
        // and descendants are already ordered through it — DESIGN.md §4).
        let mut sc = std::mem::take(self.scratch.get_mut());
        if !frontier_ready {
            self.prep_scratch(&mut sc);
            self.collect_frontiers(v, &mut sc);
        }
        let preds = std::mem::take(&mut sc.preds_f);
        let succs = std::mem::take(&mut sc.succs_f);
        for &p in &preds {
            self.apply_pred_rule(p, n, k);
        }
        for &q in &succs {
            self.apply_succ_rule(q, n, k);
        }
        sc.preds_f = preds;
        sc.succs_f = succs;

        // The new node's own labels read its (final) out-neighbours, so
        // repair those first; everything upstream is merely invalidated.
        let mut lz = std::mem::take(self.n_tdist.get_mut());
        for j in 0..self.threads {
            let m = self.out[n as usize * self.stride + j];
            if m != NONE {
                self.repair_tdist(&mut lz, m);
            }
        }
        self.init_new_node(n, &mut lz);
        self.propagate_forward(n, &mut sc);
        self.propagate_reach_backward(n, &mut sc);
        self.invalidate_tdist_backward(n, &mut lz);
        *self.n_tdist.get_mut() = lz;
        *self.scratch.get_mut() = sc;

        self.history.push(v);
    }

    /// Extracts the hard schedule implied by the current state: every
    /// scheduled operation starts at `sdist − delay` (the ASAP schedule of
    /// the threaded graph; resource exclusion is already encoded in the
    /// thread chains). Unscheduled operations are left unassigned.
    pub fn extract_hard(&self) -> HardSchedule {
        let mut sched = HardSchedule::new(self.core.g.len());
        for v in self.core.g.op_ids() {
            if let Some(n) = self.node_of[v.index()] {
                let n = n as usize;
                let unit = if (self.n_thread[n] as usize) < self.resources.k() {
                    Some(self.n_thread[n] as usize)
                } else {
                    None
                };
                sched.assign(v, self.nh[n].sdist - self.nh[n].delay, unit);
            }
        }
        // Spill reloads issue as late as their state slack allows, so
        // the spilled value stays in background memory instead of a
        // register. Pushing a Load to `min(successor starts) − delay`
        // respects every state edge (including the memory-port chain),
        // so the schedule stays legal.
        for v in self.core.g.op_ids() {
            if self.core.g.kind(v) != OpKind::Load {
                continue;
            }
            let Some(n) = self.node_of[v.index()] else { continue };
            let n = n as usize;
            let mut latest = u64::MAX;
            for j in 0..self.threads {
                let m = self.out[n * self.stride + j];
                if m != NONE {
                    if let Some(succ) = self.op_of[m as usize] {
                        let st = sched.start(succ).expect("state successors are scheduled");
                        latest = latest.min(st);
                    }
                }
            }
            if latest != u64::MAX {
                let asap = self.nh[n].sdist - self.nh[n].delay;
                let alap = latest.saturating_sub(self.nh[n].delay);
                if alap > asap {
                    let unit = sched.unit(v);
                    sched.assign(v, alap, unit);
                }
            }
        }
        sched
    }

    /// Exports the scheduling state as a plain precedence graph plus
    /// thread assignment (Definition 6: the subgraph spanned by
    /// `V \ s \ t`).
    pub fn snapshot(&self) -> StateSnapshot {
        let mut graph = PrecedenceGraph::with_capacity(self.history.len());
        let mut ops = Vec::with_capacity(self.history.len());
        let mut threads = Vec::with_capacity(self.history.len());
        let mut snap_of = vec![usize::MAX; self.op_of.len()];
        for (n, &op) in self.op_of.iter().enumerate() {
            let Some(op) = op else { continue };
            let id = graph.add_op(self.core.g.kind(op), self.nh[n].delay, self.core.g.label(op));
            snap_of[n] = id.index();
            ops.push(op);
            threads.push(self.n_thread[n] as usize);
        }
        for n in 0..self.op_of.len() {
            if self.op_of[n].is_none() {
                continue;
            }
            for j in 0..self.threads {
                let m = self.out[n * self.stride + j];
                if m != NONE && self.op_of[m as usize].is_some() {
                    let from = OpId::from_index(snap_of[n]);
                    let to = OpId::from_index(snap_of[m as usize]);
                    graph.add_edge(from, to).expect("state edges are valid");
                }
            }
        }
        StateSnapshot::new(graph, ops, threads)
    }

    /// Splices a chain of new operations onto the edge `from -> to` of the
    /// behavior *and* schedules them, in order — the soft-scheduling
    /// refinement of the paper's Figure 1(c)/(d) (spill code, wire
    /// delays). Returns the new operation ids.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Ir`] if `from -> to` is not an edge, plus the
    /// scheduling errors of [`ThreadedScheduler::schedule`].
    pub fn refine_splice(
        &mut self,
        from: OpId,
        to: OpId,
        chain: impl IntoIterator<Item = (OpKind, u64, String)>,
    ) -> Result<Vec<OpId>, SchedError> {
        let inserted = Arc::make_mut(&mut self.core).g.splice_on_edge(from, to, chain)?;
        self.sync_graph_growth()?;
        for &v in &inserted {
            // Reloads go as late as their slack allows so the spilled
            // value stays in memory, not in a register; everything else
            // keeps the default (earliest-optimal) tie-break.
            if self.core.g.kind(v) == OpKind::Load {
                self.schedule_late(v)?;
            } else {
                self.schedule(v)?;
            }
        }
        Ok(inserted)
    }

    /// Adds a brand-new operation with the given dependencies to the
    /// behavior and schedules it (an engineering change / ECO).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::WouldCycle`] if the new edges close a cycle,
    /// plus the scheduling errors of [`ThreadedScheduler::schedule`].
    pub fn refine_add_op(
        &mut self,
        kind: OpKind,
        delay: u64,
        label: impl Into<String>,
        preds: &[OpId],
        succs: &[OpId],
    ) -> Result<OpId, SchedError> {
        let core = Arc::make_mut(&mut self.core);
        let v = core.g.add_op(kind, delay, label);
        for &p in preds {
            core.g.add_edge(p, v)?;
        }
        for &q in succs {
            core.g.add_edge(v, q)?;
        }
        if self.core.g.validate().is_err() {
            return Err(SchedError::WouldCycle(v));
        }
        self.sync_graph_growth()?;
        self.schedule(v)?;
        Ok(v)
    }

    /// Replays an engineering-change resubmission incrementally: grows
    /// the scheduled behavior to match `target` — which must
    /// [`extend`](PrecedenceGraph::extends) the current graph — by
    /// [`refine_add_op`](Self::refine_add_op)-ing each new operation in
    /// id order, with its edges attached as both endpoints become
    /// available. Re-schedules only the added cone instead of the
    /// whole design from scratch; see
    /// [`refine_graft`](Self::refine_graft) for the variant that
    /// tolerates states whose ids have diverged from the submitted
    /// base (the serve layer's ECO fast path).
    ///
    /// The `budget` is checked before every added operation (the wall
    /// deadline and a step quota counted over *added* ops), so a
    /// pathological "extension" of ten thousand operations degrades
    /// into a typed [`SchedError::Timeout`], never an unbounded stall.
    ///
    /// Returns the ids of the added operations.
    ///
    /// # Errors
    ///
    /// [`SchedError::NotAnExtension`] if `target` does not extend the
    /// current behavior or carries loop edges (the acyclic replay
    /// cannot honour inter-iteration semantics);
    /// [`SchedError::Timeout`] on budget expiry; otherwise the errors
    /// of [`refine_add_op`](Self::refine_add_op).
    pub fn refine_replay(
        &mut self,
        target: &PrecedenceGraph,
        budget: &hls_ir::Budget,
    ) -> Result<Vec<OpId>, SchedError> {
        if target.has_loop_edges() || !target.extends(&self.core.g) {
            return Err(SchedError::NotAnExtension);
        }
        let mut added = Vec::with_capacity(target.len() - self.core.g.len());
        for i in self.core.g.len()..target.len() {
            if budget.expired(added.len() as u64) {
                return Err(SchedError::Timeout);
            }
            let v = OpId::from_index(i);
            // Edges to ops not yet added are attached later, from the
            // other endpoint, once it arrives (ids grow monotonically).
            let existing = self.core.g.len();
            let preds: Vec<OpId> = target
                .preds(v)
                .iter()
                .copied()
                .filter(|p| p.index() < existing)
                .collect();
            let succs: Vec<OpId> = target
                .succs(v)
                .iter()
                .copied()
                .filter(|s| s.index() < existing)
                .collect();
            let id =
                self.refine_add_op(target.kind(v), target.delay(v), target.label(v), &preds, &succs)?;
            debug_assert_eq!(id, v, "replay preserves id order");
            added.push(id);
        }
        Ok(added)
    }

    /// Grafts the ops of `target` beyond `map.len()` onto this state,
    /// translating edge endpoints through `map` (submitted-graph index
    /// → id in this state). This is
    /// [`refine_replay`](Self::refine_replay) for states whose
    /// behavior has *diverged
    /// in ids* from the submitted base — e.g. a finished flow state
    /// that appended spill, move and wire-delay operations after the
    /// base ops. The serve layer's schedule cache uses this as its
    /// ECO-delta fast path: the delta cone is scheduled incrementally
    /// onto the cached post-flow state, everything already absorbed
    /// stays absorbed.
    ///
    /// The caller asserts that the first `map.len()` ops of `target`
    /// are the base behavior behind `map` (the cache checks
    /// [`PrecedenceGraph::extends`] against the graph as submitted).
    /// `map` is extended in place with the ids of the grafted ops.
    /// The `budget` is checked before every added op, exactly as in
    /// replay.
    ///
    /// # Errors
    ///
    /// [`SchedError::NotAnExtension`] if `target` carries loop edges,
    /// is shorter than `map`, or a delta op's edge points at an op the
    /// map does not cover; [`SchedError::Malformed`] if `map` carries
    /// duplicate entries (two submitted indices aliasing one scheduled
    /// op — translating through such a map would silently merge their
    /// edge sets, last-write-wins); [`SchedError::Timeout`] on budget
    /// expiry; otherwise the errors of
    /// [`refine_add_op`](Self::refine_add_op). On every error the
    /// state and `map` are unchanged unless ops were already added
    /// (partial grafts extend `map` alongside the state).
    pub fn refine_graft(
        &mut self,
        target: &PrecedenceGraph,
        map: &mut Vec<OpId>,
        budget: &hls_ir::Budget,
    ) -> Result<Vec<OpId>, SchedError> {
        if target.has_loop_edges() || target.len() < map.len() {
            return Err(SchedError::NotAnExtension);
        }
        // An injective map is a precondition of the whole translation:
        // with an alias, every edge at the duplicated entry lands on
        // one op and the other submitted op silently loses its cone.
        // Checked up front so the rejection leaves the state pristine.
        let mut seen = vec![false; self.core.g.len()];
        for &m in map.iter() {
            match seen.get_mut(m.index()) {
                Some(slot) if !*slot => *slot = true,
                Some(_) => {
                    return Err(SchedError::Malformed(format!(
                        "graft map aliases scheduled op {m} under two submitted indices"
                    )))
                }
                None => {
                    return Err(SchedError::Malformed(format!(
                        "graft map entry {m} is outside this state's id space"
                    )))
                }
            }
        }
        let base_len = map.len();
        let mut added = Vec::with_capacity(target.len() - base_len);
        for i in base_len..target.len() {
            if budget.expired(added.len() as u64) {
                return Err(SchedError::Timeout);
            }
            let v = OpId::from_index(i);
            // Edges to delta ops not yet grafted are attached later,
            // from the other endpoint (target ids grow monotonically,
            // so the other endpoint sees this one in the map).
            fn translate(
                ends: &[OpId],
                upto: usize,
                map: &[OpId],
            ) -> Result<Vec<OpId>, SchedError> {
                ends.iter()
                    .filter(|e| e.index() < upto)
                    .map(|e| map.get(e.index()).copied().ok_or(SchedError::NotAnExtension))
                    .collect()
            }
            let preds = translate(target.preds(v), i, map)?;
            let succs = translate(target.succs(v), i, map)?;
            let id =
                self.refine_add_op(target.kind(v), target.delay(v), target.label(v), &preds, &succs)?;
            map.push(id);
            added.push(id);
        }
        Ok(added)
    }

    /// Renders the scheduling state as a DOT digraph: one colour per
    /// thread, solid edges for the thread chains, dashed edges for cross
    /// (dependence/serialisation) edges. Sentinels are omitted.
    pub fn state_to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        const COLORS: [&str; 8] = [
            "lightblue", "lightsalmon", "palegreen", "plum", "khaki", "lightgrey", "orange",
            "cyan",
        ];
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  node [shape=box, style=filled, fontsize=10];");
        for (n, &op) in self.op_of.iter().enumerate() {
            let Some(op) = op else { continue };
            let _ = writeln!(
                out,
                "  n{} [label=\"{} ({})\\nthr {} @{}\", fillcolor={}];",
                n,
                self.core.g.label(op),
                self.core.g.kind(op),
                self.n_thread[n],
                self.nh[n].sdist - self.nh[n].delay,
                COLORS[self.n_thread[n] as usize % COLORS.len()],
            );
        }
        for n in 0..self.op_of.len() {
            if self.op_of[n].is_none() {
                continue;
            }
            for j in 0..self.threads {
                let m = self.out[n * self.stride + j];
                if m == NONE || self.op_of[m as usize].is_none() {
                    continue;
                }
                let style = if j == self.n_thread[n] as usize { "solid" } else { "dashed" };
                let _ = writeln!(out, "  n{n} -> n{m} [style={style}];");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Changes the kind and delay of an operation in place — the SSA φ
    /// resolution of the paper's Section 1 (a φ becomes a register move
    /// or a void operation only after register allocation). The state's
    /// partial order is untouched; only the labels move.
    ///
    /// The new kind must stay zero-resource (or match the thread the
    /// operation already occupies); this is the caller's contract.
    pub fn retype_op(&mut self, v: OpId, kind: OpKind, delay: u64) {
        let core = Arc::make_mut(&mut self.core);
        core.g.set_kind(v, kind);
        core.g.set_delay(v, delay);
        if let Some(n) = self.node_of[v.index()] {
            self.total_delay = self.total_delay - self.nh[n as usize].delay + delay;
            self.nh[n as usize].delay = delay;
            // Delays may shrink, so increase-only propagation does not
            // apply; this cold path relabels from scratch (which also
            // refreshes the lower-bound caches).
            self.relabel_full();
        } else {
            // The graph changed even though the state did not: the
            // static sink distances and the resource floor feeding
            // `final_lower_bound` must not go stale (a stale bound
            // stops being a *lower* bound when delays shrink).
            self.refresh_proj();
        }
    }

    /// Verifies the internal invariants of the state: pointer symmetry,
    /// chain integrity, strictly increasing gap positions, the Lemma 7
    /// degree bound, acyclicity, label freshness, reach-vector
    /// freshness (the incremental engine against a from-scratch
    /// recomputation), and exact agreement of the chain-cover
    /// reachability index and its per-chain scheduled extrema with the
    /// dense-closure oracle.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let s = self.stride;
        if s < self.threads {
            return Err(format!("stride {s} below thread count {}", self.threads));
        }
        let n_nodes = self.op_of.len();
        for n in 0..n_nodes {
            for j in 0..self.threads {
                let m = self.out[n * s + j];
                if m != NONE {
                    if self.n_thread[m as usize] as usize != j {
                        return Err(format!(
                            "node {n}: out[{j}] lands in thread {}",
                            self.n_thread[m as usize]
                        ));
                    }
                    if self.inc[m as usize * s + self.n_thread[n] as usize] != n as u32 {
                        return Err(format!("node {n}: out[{j}] not mirrored by inc"));
                    }
                }
                let m = self.inc[n * s + j];
                if m != NONE {
                    if self.n_thread[m as usize] as usize != j {
                        return Err(format!(
                            "node {n}: inc[{j}] from thread {}",
                            self.n_thread[m as usize]
                        ));
                    }
                    if self.out[m as usize * s + self.n_thread[n] as usize] != n as u32 {
                        return Err(format!("node {n}: inc[{j}] not mirrored by out"));
                    }
                }
            }
        }
        for k in 0..self.threads {
            let mut cur = self.sent_s[k];
            let mut last_pos = self.nh[cur as usize].pos;
            let mut count = 0usize;
            loop {
                let next = self.out[cur as usize * s + k];
                if next == NONE {
                    if cur != self.sent_t[k] {
                        return Err(format!("thread {k}: chain does not end at sentinel"));
                    }
                    break;
                }
                let np = self.nh[next as usize].pos;
                if np <= last_pos {
                    return Err(format!("thread {k}: positions not increasing"));
                }
                last_pos = np;
                cur = next;
                count += 1;
                if count > n_nodes {
                    return Err(format!("thread {k}: chain cycle"));
                }
            }
            let members = (0..n_nodes)
                .filter(|&i| self.n_thread[i] as usize == k && self.op_of[i].is_some())
                .count();
            if members + 1 != count {
                return Err(format!(
                    "thread {k}: chain covers {count} hops but thread has {members} ops"
                ));
            }
        }
        // The chain-cover index must agree exactly with the dense
        // closure oracle, and the per-chain scheduled extrema with the
        // actual scheduled set.
        self.core.reach
            .check(&self.core.g)
            .map_err(|e| format!("reach index: {e}"))?;
        if self.sched_extrema.chain_count() != self.core.reach.chain_count() {
            return Err("scheduled extrema disagree with chain count".to_string());
        }
        let want = self.core.reach.extrema(
            self.core.g
                .op_ids()
                .filter(|v| self.node_of[v.index()].is_some())
                .map(|v| v.index()),
        );
        if want != self.sched_extrema {
            return Err("stale per-chain scheduled extrema".to_string());
        }
        // Acyclicity + freshness of the incrementally maintained labels
        // and reach vectors, against a from-scratch recomputation.
        let (sdist, tdist, rb, rf) = self
            .compute_labels_full()
            .ok_or_else(|| "scheduling state must stay acyclic".to_string())?;
        if self.diam != sdist.iter().copied().max().unwrap_or(0) {
            return Err(format!(
                "cached diameter {} disagrees with label maximum",
                self.diam
            ));
        }
        if self.core.gdist != hls_ir::algo::sink_distances(&self.core.g) {
            return Err("stale graph sink distances".to_string());
        }
        let want_proj = (0..n_nodes)
            .filter_map(|n| {
                self.op_of[n]
                    .map(|op| sdist[n] - self.nh[n].delay + self.core.gdist[op.index()])
            })
            .max()
            .unwrap_or(0);
        if self.proj != want_proj {
            return Err(format!(
                "final-diameter projection {} disagrees with label recomputation {want_proj}",
                self.proj
            ));
        }
        if self.final_lower_bound() < self.diam {
            return Err("final lower bound below the diameter".to_string());
        }
        if self.res_floor != self.resource_floor() {
            return Err("stale resource floor".to_string());
        }
        for n in 0..n_nodes {
            if self.nh[n].sdist != sdist[n] || self.tdist_of(n as u32) != tdist[n] {
                return Err(format!("node {n}: stale labels"));
            }
            for j in 0..self.threads {
                if self.reach_b[n * s + j] != rb[n * s + j] {
                    return Err(format!("node {n}: stale backward reach in thread {j}"));
                }
                if self.reach_f[n * s + j] != rf[n * s + j] {
                    return Err(format!("node {n}: stale forward reach in thread {j}"));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn push_thread(&mut self) -> usize {
        let k = self.threads;
        self.threads += 1;
        if self.threads > self.stride {
            self.grow_stride((self.stride * 2).max(self.threads));
        }
        let s_node = self.alloc_raw_node(k, 0);
        let t_node = self.alloc_raw_node(k, 0);
        self.out[s_node as usize * self.stride + k] = t_node;
        self.inc[t_node as usize * self.stride + k] = s_node;
        self.nh[t_node as usize].pos = GAP;
        self.sent_s.push(s_node);
        self.sent_t.push(t_node);
        k
    }

    /// Re-lays the flat per-node tables for a wider row. Only wire
    /// scheduling grows `K`, and doubling keeps the total relayout work
    /// amortized over those pushes.
    fn grow_stride(&mut self, new_stride: usize) {
        let old = self.stride;
        let n = self.op_of.len();
        let relayout = |tab: &mut Vec<u32>| {
            let mut next = vec![NONE; n * new_stride];
            for i in 0..n {
                next[i * new_stride..i * new_stride + old]
                    .copy_from_slice(&tab[i * old..(i + 1) * old]);
            }
            *tab = next;
        };
        relayout(&mut self.inc);
        relayout(&mut self.out);
        relayout(&mut self.reach_b);
        relayout(&mut self.reach_f);
        self.stride = new_stride;
    }

    fn alloc_raw_node(&mut self, thread: usize, delay: u64) -> u32 {
        // Strictly below NONE: index u32::MAX would collide with the
        // missing-edge sentinel of the flat tables.
        assert!(
            self.op_of.len() < NONE as usize,
            "node count exceeds u32 sentinel space"
        );
        let idx = self.op_of.len() as u32;
        self.total_delay += delay;
        self.n_thread.push(thread as u32);
        self.nh.push(NodeHot { pos: 0, sdist: 0, delay });
        {
            let lz = self.n_tdist.get_mut();
            lz.val.push(0);
            lz.dirty.push(false);
        }
        self.op_of.push(None);
        self.inc.extend(std::iter::repeat_n(NONE, self.stride));
        self.out.extend(std::iter::repeat_n(NONE, self.stride));
        self.reach_b.extend(std::iter::repeat_n(NONE, self.stride));
        self.reach_f.extend(std::iter::repeat_n(NONE, self.stride));
        idx
    }

    /// Assigns a gap-numbered position to `n`, just inserted between
    /// `prev` and `next` in thread `k`. Tail inserts extend the
    /// numbering (bumping the sentinel); mid-chain inserts bisect the
    /// gap, renumbering the chain only when a gap is exhausted.
    fn assign_pos(&mut self, n: u32, prev: u32, next: u32, k: usize) {
        if next == self.sent_t[k] {
            let p = self.nh[prev as usize].pos + GAP;
            self.nh[n as usize].pos = p;
            self.nh[next as usize].pos = p + GAP;
        } else {
            let lo = self.nh[prev as usize].pos;
            let hi = self.nh[next as usize].pos;
            if hi - lo >= 2 {
                self.nh[n as usize].pos = lo + (hi - lo) / 2;
            } else {
                self.renumber_chain(k);
            }
        }
    }

    fn renumber_chain(&mut self, k: usize) {
        let mut pos = 0u64;
        let mut cur = self.sent_s[k];
        loop {
            self.nh[cur as usize].pos = pos;
            pos += GAP;
            let next = self.out[cur as usize * self.stride + k];
            if next == NONE {
                break;
            }
            cur = next;
        }
    }

    fn chain_pred_op(&self, n: u32) -> Option<OpId> {
        let k = self.n_thread[n as usize] as usize;
        let prev = self.inc[n as usize * self.stride + k];
        debug_assert_ne!(prev, NONE, "real nodes have chain predecessors");
        self.op_of[prev as usize]
    }

    /// Wire-class operations occupy no functional unit: each becomes its
    /// own singleton thread, keeping the state a well-formed threaded
    /// graph (Definition 4 with a grown `K`).
    fn schedule_wire(&mut self, v: OpId) -> Result<Placement, SchedError> {
        let k = self.push_thread();
        let placement = Placement {
            thread: k,
            after: None,
            cost: 0,
        };
        self.commit(placement, v);
        let n = self.node_of[v.index()].expect("just committed");
        Ok(Placement {
            cost: self.nh[n as usize].sdist + self.tdist_of(n) - self.nh[n as usize].delay,
            ..placement
        })
    }

    /// Exact `tdist(x)`, repairing the dirty forward cone on demand.
    fn tdist_of(&self, x: u32) -> u64 {
        let mut lz = self.n_tdist.borrow_mut();
        self.repair_tdist(&mut lz, x);
        lz.val[x as usize]
    }

    /// Pull-based repair: recomputes every dirty node in the forward
    /// cone of `x` from its (recursively repaired) out-neighbours.
    fn repair_tdist(&self, lz: &mut TdistLazy, x: u32) {
        if !lz.dirty[x as usize] {
            return;
        }
        let s = self.stride;
        // Repairing a (never-legal) cyclic state would chase dirty
        // nodes around the cycle forever; the stack bound fails fast
        // instead, mirroring the seed's relabel assert.
        let stack_bound = self.op_of.len() * (self.threads + 1) + 64;
        let mut stack = std::mem::take(&mut lz.stack);
        stack.clear();
        stack.push(x);
        while let Some(&y) = stack.last() {
            assert!(stack.len() <= stack_bound, "scheduling state must stay acyclic");
            let yi = y as usize;
            if !lz.dirty[yi] {
                stack.pop();
                continue;
            }
            let mut pending = false;
            for j in 0..self.threads {
                let z = self.out[yi * s + j];
                if z != NONE && lz.dirty[z as usize] {
                    stack.push(z);
                    pending = true;
                }
            }
            if pending {
                continue;
            }
            let mut best = 0;
            for j in 0..self.threads {
                let z = self.out[yi * s + j];
                if z != NONE {
                    best = best.max(lz.val[z as usize]);
                }
            }
            lz.val[yi] = best + self.nh[yi].delay;
            lz.dirty[yi] = false;
            stack.pop();
        }
        lz.stack = stack;
    }

    /// Marks the backward cone of `n` dirty, stopping at already-dirty
    /// nodes. Each node is marked at most once between repairs, so the
    /// steady-state cost per commit is `O(K)` — this is what removes
    /// the seed's full-relabel `Θ(|V|·K)` from every commit.
    fn invalidate_tdist_backward(&self, n: u32, lz: &mut TdistLazy) {
        let s = self.stride;
        let mut stack = std::mem::take(&mut lz.stack);
        stack.clear();
        stack.push(n);
        while let Some(y) = stack.pop() {
            for j in 0..self.threads {
                let p = self.inc[y as usize * s + j];
                if p != NONE && !lz.dirty[p as usize] {
                    lz.dirty[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        lz.stack = stack;
    }

    /// Sizes the scratch buffers and opens a fresh visitation epoch.
    fn prep_scratch(&self, sc: &mut Scratch) {
        if sc.epoch == u32::MAX {
            sc.op_seen.iter_mut().for_each(|e| *e = 0);
            sc.epoch = 0;
        }
        sc.epoch += 1;
        if sc.op_seen.len() < self.core.g.len() {
            sc.op_seen.resize(self.core.g.len(), 0);
        }
        if sc.lo.len() < self.threads {
            sc.lo.resize(self.threads, NONE);
            sc.hi.resize(self.threads, NONE);
        }
    }

    /// `true` iff op `x` has a scheduled strict ancestor: some chain
    /// holds a scheduled op at or before the highest position that
    /// reaches `x`. `O(#chains)`, branchless — this replaces the seed's
    /// `Θ(|V|/64)` closure-row ∩ scheduled-mask probe.
    fn has_scheduled_ancestor(&self, x: usize) -> bool {
        self.core.reach.set_reaches(&self.sched_extrema, x)
    }

    /// `true` iff op `x` has a scheduled strict descendant — the mirror
    /// of [`Self::has_scheduled_ancestor`] against the per-chain
    /// scheduled maxima.
    fn has_scheduled_descendant(&self, x: usize) -> bool {
        self.core.reach.set_reached_by(&self.sched_extrema, x)
    }

    /// Walks the *scheduled frontier* of `v`: the first scheduled
    /// operation along every predecessor (resp. successor) path of the
    /// behavior graph. Every other scheduled ancestor/descendant is
    /// ordered through a frontier member (correctness condition), so the
    /// frontier alone determines the feasible windows and intrinsic
    /// distances. The walk descends through unscheduled ops only, pruned
    /// by `O(#chains)` chain-cover reachability probes.
    fn collect_frontiers(&self, v: OpId, sc: &mut Scratch) {
        let e = sc.epoch;
        sc.preds_f.clear();
        sc.succs_f.clear();
        sc.stack.clear();
        for &p in self.core.g.preds(v) {
            sc.stack.push(p.index() as u32);
        }
        while let Some(x) = sc.stack.pop() {
            let xi = x as usize;
            if sc.op_seen[xi] == e {
                continue;
            }
            sc.op_seen[xi] = e;
            if let Some(n) = self.node_of[xi] {
                sc.preds_f.push(n);
            } else if self.has_scheduled_ancestor(xi) {
                for &p in self.core.g.preds(OpId::from_index(xi)) {
                    sc.stack.push(p.index() as u32);
                }
            }
        }
        // An op's ancestors and descendants are disjoint (DAG), so the
        // epoch marks are shared between the two walks.
        if self.has_scheduled_descendant(v.index()) {
            sc.stack.clear();
            for &q in self.core.g.succs(v) {
                sc.stack.push(q.index() as u32);
            }
            while let Some(x) = sc.stack.pop() {
                let xi = x as usize;
                if sc.op_seen[xi] == e {
                    continue;
                }
                sc.op_seen[xi] = e;
                if let Some(n) = self.node_of[xi] {
                    sc.succs_f.push(n);
                } else if self.has_scheduled_descendant(xi) {
                    for &q in self.core.g.succs(OpId::from_index(xi)) {
                        sc.stack.push(q.index() as u32);
                    }
                }
            }
        }
        // Deterministic rule-application and window order, matching the
        // seed's ancestor-row iteration (increasing op index).
        sc.preds_f.sort_unstable_by_key(|&n| self.op_of[n as usize]);
        sc.succs_f.sort_unstable_by_key(|&n| self.op_of[n as usize]);
    }

    /// Folds the frontier and its reach vectors into per-thread windows
    /// (`sc.lo`/`sc.hi`) and returns `(intrinsic_src, intrinsic_snk)`.
    fn absorb_windows(&self, sc: &mut Scratch) -> (u64, u64) {
        sc.lo[..self.threads].fill(NONE);
        sc.hi[..self.threads].fill(NONE);
        let s = self.stride;
        let mut isrc = 0u64;
        let mut isnk = 0u64;
        for &p in &sc.preds_f {
            let pi = p as usize;
            isrc = isrc.max(self.nh[pi].sdist);
            let tp = self.n_thread[pi] as usize;
            sc.lo[tp] = self.later(sc.lo[tp], p);
            for (j, slot) in sc.lo[..self.threads].iter_mut().enumerate() {
                let r = self.reach_b[pi * s + j];
                if r != NONE {
                    *slot = self.later(*slot, r);
                }
            }
        }
        for &q in &sc.succs_f {
            let qi = q as usize;
            isnk = isnk.max(self.tdist_of(q));
            let tq = self.n_thread[qi] as usize;
            sc.hi[tq] = self.earlier(sc.hi[tq], q);
            for (j, slot) in sc.hi[..self.threads].iter_mut().enumerate() {
                let r = self.reach_f[qi * s + j];
                if r != NONE {
                    *slot = self.earlier(*slot, r);
                }
            }
        }
        (isrc, isnk)
    }

    /// Later (max-pos) of two same-thread nodes; [`NONE`] loses.
    fn later(&self, a: u32, b: u32) -> u32 {
        if a == NONE {
            b
        } else if b == NONE || self.nh[a as usize].pos >= self.nh[b as usize].pos {
            a
        } else {
            b
        }
    }

    /// Earlier (min-pos) of two same-thread nodes; [`NONE`] loses.
    fn earlier(&self, a: u32, b: u32) -> u32 {
        if a == NONE {
            b
        } else if b == NONE || self.nh[a as usize].pos <= self.nh[b as usize].pos {
            a
        } else {
            b
        }
    }

    fn for_each_feasible(
        &self,
        v: OpId,
        mut f: impl FnMut(Placement),
    ) -> Result<(), SchedError> {
        if v.index() >= self.core.g.len() {
            return Err(SchedError::UnknownOp(v));
        }
        let kind = self.core.g.kind(v);
        if !(0..self.resources.k()).any(|k| self.resources.compatible(k, kind)) {
            return Err(SchedError::NoCompatibleUnit(v, kind));
        }
        let mut sc = self.scratch.take();
        self.prep_scratch(&mut sc);
        self.collect_frontiers(v, &mut sc);
        let (isrc, isnk) = self.absorb_windows(&mut sc);
        let delay = self.core.g.delay(v);
        let s = self.stride;
        for k in 0..self.resources.k() {
            if !self.resources.compatible(k, kind) {
                continue;
            }
            // The feasible positions form one contiguous window per
            // thread: from the latest state-ancestor (inclusive) up to
            // the earliest state-descendant (exclusive). Start the scan
            // there instead of at the chain head.
            let mut cur = if sc.lo[k] != NONE { sc.lo[k] } else { self.sent_s[k] };
            let hi_pos = if sc.hi[k] != NONE {
                self.nh[sc.hi[k] as usize].pos
            } else {
                u64::MAX
            };
            loop {
                let next = self.out[cur as usize * s + k];
                if next == NONE || self.nh[cur as usize].pos >= hi_pos {
                    break;
                }
                let sd = self.nh[cur as usize].sdist.max(isrc);
                let td = self.tdist_of(next).max(isnk);
                f(Placement {
                    thread: k,
                    after: self.op_of[cur as usize],
                    cost: sd + td + delay,
                });
                cur = next;
            }
        }
        self.scratch.replace(sc);
        Ok(())
    }

    /// Figure 2 rules (a)–(c): link a scheduled G-ancestor `p` to the new
    /// node `n` in thread `k`, keeping only tightest representative edges.
    fn apply_pred_rule(&mut self, p: u32, n: u32, k: usize) {
        let s = self.stride;
        let j = self.n_thread[p as usize] as usize;
        let q = self.out[p as usize * s + k];
        if q != NONE {
            // Rule (a): existing edge to a vertex at or before `n` already
            // implies `p ≺ n` through the chain.
            if q == n || self.nh[q as usize].pos < self.nh[n as usize].pos {
                return;
            }
            // Rule (c): the edge overshoots `n`; retarget it.
            debug_assert_eq!(self.inc[q as usize * s + j], p);
            self.inc[q as usize * s + j] = NONE;
            self.out[p as usize * s + k] = NONE;
        }
        // Rule (b) otherwise: no edge into thread `k` yet.
        let p2 = self.inc[n as usize * s + j];
        if p2 == p {
            self.out[p as usize * s + k] = n;
        } else if p2 != NONE && self.nh[p2 as usize].pos > self.nh[p as usize].pos {
            // A later vertex of thread `j` already guards `n`; `p ≺ p2 ≺ n`.
        } else {
            // `p` is tighter than the recorded predecessor; displace it.
            if p2 != NONE {
                self.out[p2 as usize * s + k] = NONE;
            }
            self.inc[n as usize * s + j] = p;
            self.out[p as usize * s + k] = n;
        }
    }

    /// Figure 2 rules (d)–(f): link the new node `n` (thread `k`) to a
    /// scheduled G-descendant `q`.
    fn apply_succ_rule(&mut self, q: u32, n: u32, k: usize) {
        let s = self.stride;
        let j2 = self.n_thread[q as usize] as usize;
        let u = self.inc[q as usize * s + k];
        if u != NONE {
            // Rule (d): `q` already follows a vertex after `n` in thread
            // `k`; `n ≺ u ≺ q` through the chain.
            if u == n || self.nh[u as usize].pos > self.nh[n as usize].pos {
                return;
            }
            // Rule (f): the edge comes from before `n`; retarget it.
            debug_assert_eq!(self.out[u as usize * s + j2], q);
            self.out[u as usize * s + j2] = NONE;
            self.inc[q as usize * s + k] = NONE;
        }
        // Rule (e) otherwise: no edge from thread `k` yet.
        let q2 = self.out[n as usize * s + j2];
        if q2 == q {
            self.inc[q as usize * s + k] = n;
        } else if q2 != NONE && self.nh[q2 as usize].pos < self.nh[q as usize].pos {
            // An earlier vertex of thread `j2` is already guarded;
            // `n ≺ q2 ≺ q`.
        } else {
            if q2 != NONE {
                self.inc[q2 as usize * s + k] = NONE;
            }
            self.out[n as usize * s + j2] = q;
            self.inc[q as usize * s + k] = n;
        }
    }

    /// Seeds the labels and reach vectors of a freshly linked node from
    /// its (final) direct state edges. The out-neighbours' `tdist` must
    /// already be repaired.
    fn init_new_node(&mut self, n: u32, lz: &mut TdistLazy) {
        let s = self.stride;
        let ni = n as usize;
        let mut sd = 0u64;
        let mut td = 0u64;
        for j in 0..self.threads {
            let m = self.inc[ni * s + j];
            if m != NONE {
                let mi = m as usize;
                sd = sd.max(self.nh[mi].sdist);
                for t in 0..self.threads {
                    let mut c = self.reach_b[mi * s + t];
                    if self.n_thread[mi] as usize == t && self.op_of[mi].is_some() {
                        c = self.later(c, m);
                    }
                    if c != NONE {
                        self.reach_b[ni * s + t] = self.later(self.reach_b[ni * s + t], c);
                    }
                }
            }
            let m = self.out[ni * s + j];
            if m != NONE {
                let mi = m as usize;
                debug_assert!(!lz.dirty[mi], "out-neighbour tdist must be repaired");
                td = td.max(lz.val[mi]);
                for t in 0..self.threads {
                    let mut c = self.reach_f[mi * s + t];
                    if self.n_thread[mi] as usize == t && self.op_of[mi].is_some() {
                        c = self.earlier(c, m);
                    }
                    if c != NONE {
                        self.reach_f[ni * s + t] = self.earlier(self.reach_f[ni * s + t], c);
                    }
                }
            }
        }
        self.nh[ni].sdist = sd + self.nh[ni].delay;
        self.diam = self.diam.max(self.nh[ni].sdist);
        self.note_proj(ni);
        lz.val[ni] = td + self.nh[ni].delay;
        lz.dirty[ni] = false;
    }

    /// Folds node `n`'s current label into the final-diameter lower
    /// bound (no-op for sentinels).
    fn note_proj(&mut self, n: usize) {
        if let Some(op) = self.op_of[n] {
            self.proj = self
                .proj
                .max(self.nh[n].sdist - self.nh[n].delay + self.core.gdist[op.index()]);
        }
    }

    /// Recomputes the static graph sink distances, the projection
    /// maximum and the resource floor from scratch — the cold-path
    /// companion of [`Self::relabel_full`] and
    /// [`Self::sync_graph_growth`] (graph growth only raises `gdist`,
    /// but delay retyping can shrink it, so the running maxima must be
    /// rebuilt, not folded).
    fn refresh_proj(&mut self) {
        let core = Arc::make_mut(&mut self.core);
        core.gdist = hls_ir::algo::sink_distances(&core.g);
        self.proj = 0;
        for n in 0..self.op_of.len() {
            self.note_proj(n);
        }
        self.res_floor = self.resource_floor();
    }

    /// Computes the static resource floor: operations are grouped by
    /// their exact compatible-unit set; each group's delay-sum must
    /// serialise over its units, so `⌈W_U / |U|⌉` lower-bounds every
    /// completed schedule. Wire-class operations occupy no unit and
    /// are exempt. Cold path only (`O(|V| · K)`).
    fn resource_floor(&self) -> u64 {
        let k = self.resources.k();
        let mut groups: std::collections::HashMap<Vec<bool>, u64> =
            std::collections::HashMap::new();
        for v in self.core.g.op_ids() {
            let kind = self.core.g.kind(v);
            if kind.resource_class() == ResourceClass::Wire {
                continue;
            }
            let set: Vec<bool> = (0..k).map(|u| self.resources.compatible(u, kind)).collect();
            if set.iter().any(|&b| b) {
                *groups.entry(set).or_insert(0) += self.core.g.delay(v);
            }
        }
        groups
            .iter()
            .map(|(set, &w)| {
                let units = set.iter().filter(|&&b| b).count() as u64;
                w.div_ceil(units)
            })
            .max()
            .unwrap_or(0)
    }

    /// Increase-only relaxation of `sdist` and the backward reach
    /// vectors over the forward cone of `from`. Edge retargeting during
    /// `commit` only replaces an edge by a longer-or-equal path through
    /// the new node, so labels are monotone and the worklist touches
    /// only nodes whose values actually change.
    ///
    /// The two relaxations are independent (`sdist` never reads the
    /// reach rows and vice versa), so they run as *separate* worklist
    /// passes: the row merge self-limits after a handful of nodes (only
    /// nodes that previously had no later thread-`k` ancestor change),
    /// while the `sdist` cascade of a mid-chain insert runs down the
    /// whole tail cone — keeping its inner loop free of the `threads²`
    /// row merge is the difference between ~4 and ~10 random cache
    /// lines per popped node.
    fn propagate_forward(&mut self, from: u32, sc: &mut Scratch) {
        let s = self.stride;
        let tn = self.threads;
        if sc.in_queue.len() < self.op_of.len() {
            sc.in_queue.resize(self.op_of.len(), false);
        }
        // Pass 1: backward-reach rows over the forward cone.
        sc.queue.clear();
        sc.queue.push(from);
        while let Some(x) = sc.queue.pop() {
            let xi = x as usize;
            sc.in_queue[xi] = false;
            // x's effective row — its backward-reach entries with x
            // itself folded into its own thread's slot — copied out
            // once, so the per-successor merge is slice-to-slice.
            sc.row.clear();
            sc.row.extend_from_slice(&self.reach_b[xi * s..xi * s + tn]);
            if self.op_of[xi].is_some() {
                let t = self.n_thread[xi] as usize;
                sc.row[t] = self.later(sc.row[t], x);
            }
            for j in 0..tn {
                let z = self.out[xi * s + j];
                if z == NONE {
                    continue;
                }
                let zi = z as usize;
                let mut improved = false;
                let nh = &self.nh;
                for (slot, &c) in self.reach_b[zi * s..zi * s + tn].iter_mut().zip(&sc.row) {
                    // Inlined `later(cur, c)` against the split-borrowed
                    // position table.
                    if c != NONE
                        && (*slot == NONE || nh[*slot as usize].pos < nh[c as usize].pos)
                    {
                        *slot = c;
                        improved = true;
                    }
                }
                if improved && !sc.in_queue[zi] {
                    sc.in_queue[zi] = true;
                    sc.queue.push(z);
                }
            }
        }
        // Pass 2: the lean `sdist` cascade.
        sc.queue.clear();
        sc.queue.push(from);
        while let Some(x) = sc.queue.pop() {
            let xi = x as usize;
            sc.in_queue[xi] = false;
            let xsd = self.nh[xi].sdist;
            for j in 0..tn {
                let z = self.out[xi * s + j];
                if z == NONE {
                    continue;
                }
                let zi = z as usize;
                let cand = xsd + self.nh[zi].delay;
                // No legal path exceeds the sum of all delays; a larger
                // label means an invalid placement closed a state cycle
                // and the relaxation is orbiting it.
                assert!(cand <= self.total_delay, "scheduling state must stay acyclic");
                if cand > self.nh[zi].sdist {
                    self.nh[zi].sdist = cand;
                    self.diam = self.diam.max(cand);
                    self.note_proj(zi);
                    if !sc.in_queue[zi] {
                        sc.in_queue[zi] = true;
                        sc.queue.push(z);
                    }
                }
            }
        }
    }

    /// Mirror of [`Self::propagate_forward`] for the forward reach
    /// vectors over the backward cone. (`tdist` itself is *not* pushed
    /// eagerly — see [`TdistLazy`] — because a tail commit's backward
    /// cone is nearly the whole state; reach entries, by contrast, only
    /// change for nodes that previously had no thread-`k` descendant,
    /// so this walk self-limits.)
    fn propagate_reach_backward(&mut self, from: u32, sc: &mut Scratch) {
        let s = self.stride;
        let tn = self.threads;
        if sc.in_queue.len() < self.op_of.len() {
            sc.in_queue.resize(self.op_of.len(), false);
        }
        sc.queue.clear();
        sc.queue.push(from);
        while let Some(x) = sc.queue.pop() {
            let xi = x as usize;
            sc.in_queue[xi] = false;
            sc.row.clear();
            sc.row.extend_from_slice(&self.reach_f[xi * s..xi * s + tn]);
            if self.op_of[xi].is_some() {
                let t = self.n_thread[xi] as usize;
                sc.row[t] = self.earlier(sc.row[t], x);
            }
            for j in 0..tn {
                let z = self.inc[xi * s + j];
                if z == NONE {
                    continue;
                }
                let zi = z as usize;
                let mut improved = false;
                let nh = &self.nh;
                for (slot, &c) in self.reach_f[zi * s..zi * s + tn].iter_mut().zip(&sc.row) {
                    // Inlined `earlier(cur, c)`.
                    if c != NONE
                        && (*slot == NONE || nh[*slot as usize].pos > nh[c as usize].pos)
                    {
                        *slot = c;
                        improved = true;
                    }
                }
                if improved && !sc.in_queue[zi] {
                    sc.in_queue[zi] = true;
                    sc.queue.push(z);
                }
            }
        }
    }

    /// Topological order of the threaded-graph nodes, or `None` if the
    /// state has a cycle (it never should).
    fn topo_nodes(&self) -> Option<Vec<u32>> {
        let s = self.stride;
        let n_nodes = self.op_of.len();
        let mut indeg = vec![0usize; n_nodes];
        for (i, d) in indeg.iter_mut().enumerate() {
            *d = (0..self.threads).filter(|&j| self.inc[i * s + j] != NONE).count();
        }
        let mut queue: Vec<u32> = (0..n_nodes as u32)
            .filter(|&i| indeg[i as usize] == 0)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head] as usize;
            head += 1;
            for j in 0..self.threads {
                let m = self.out[i * s + j];
                if m != NONE {
                    indeg[m as usize] -= 1;
                    if indeg[m as usize] == 0 {
                        queue.push(m);
                    }
                }
            }
        }
        (queue.len() == n_nodes).then_some(queue)
    }

    /// From-scratch recomputation of labels and reach vectors — the
    /// verification oracle for the incremental engine, and the engine
    /// behind [`Self::relabel_full`].
    fn compute_labels_full(&self) -> Option<FullLabels> {
        let topo = self.topo_nodes()?;
        let s = self.stride;
        let n_nodes = self.op_of.len();
        let mut sdist = vec![0u64; n_nodes];
        let mut tdist = vec![0u64; n_nodes];
        let mut rb = vec![NONE; n_nodes * s];
        let mut rf = vec![NONE; n_nodes * s];
        for &i in &topo {
            let ii = i as usize;
            let mut best = 0;
            for j in 0..self.threads {
                let m = self.inc[ii * s + j];
                if m == NONE {
                    continue;
                }
                let mi = m as usize;
                best = best.max(sdist[mi]);
                for t in 0..self.threads {
                    let mut c = rb[mi * s + t];
                    if self.n_thread[mi] as usize == t && self.op_of[mi].is_some() {
                        c = self.later(c, m);
                    }
                    if c != NONE {
                        rb[ii * s + t] = self.later(rb[ii * s + t], c);
                    }
                }
            }
            sdist[ii] = best + self.nh[ii].delay;
        }
        for &i in topo.iter().rev() {
            let ii = i as usize;
            let mut best = 0;
            for j in 0..self.threads {
                let m = self.out[ii * s + j];
                if m == NONE {
                    continue;
                }
                let mi = m as usize;
                best = best.max(tdist[mi]);
                for t in 0..self.threads {
                    let mut c = rf[mi * s + t];
                    if self.n_thread[mi] as usize == t && self.op_of[mi].is_some() {
                        c = self.earlier(c, m);
                    }
                    if c != NONE {
                        rf[ii * s + t] = self.earlier(rf[ii * s + t], c);
                    }
                }
            }
            tdist[ii] = best + self.nh[ii].delay;
        }
        Some((sdist, tdist, rb, rf))
    }

    /// The paper's `forwardLabel` / `backwardLabel` from scratch — used
    /// only on the cold paths (delay retyping), never per commit.
    fn relabel_full(&mut self) {
        let (sdist, tdist, rb, rf) = self
            .compute_labels_full()
            .expect("scheduling state must stay acyclic");
        for (h, &sd) in self.nh.iter_mut().zip(&sdist) {
            h.sdist = sd;
        }
        // Labels may have shrunk (delay retyping): recompute the cached
        // maxima instead of folding into the running ones.
        self.diam = self.nh.iter().map(|h| h.sdist).max().unwrap_or(0);
        self.refresh_proj();
        let lz = self.n_tdist.get_mut();
        lz.dirty.iter_mut().for_each(|d| *d = false);
        lz.val = tdist;
        self.reach_b = rb;
        self.reach_f = rf;
    }

    /// Absorbs behavior-graph growth (splices, ECO ops) into the
    /// scheduler: resizes the op-indexed tables and repairs the
    /// chain-cover reachability index *locally* — the new ops are
    /// covered by fresh chains and a min/max relaxation walks only the
    /// affected cone ([`ReachIndex::grow`]), replacing the seed's
    /// per-row dense-closure surgery.
    fn sync_graph_growth(&mut self) -> Result<(), SchedError> {
        let old = self.node_of.len();
        let new = self.core.g.len();
        self.node_of.resize(new, None);
        if new == old {
            return Ok(());
        }
        let core = Arc::make_mut(&mut self.core);
        core.reach.try_grow(&core.g)?;
        self.sched_extrema.sync_chain_count(&self.core.reach);
        self.refresh_proj();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::bench_graphs;

    fn fig1_scheduler() -> (ThreadedScheduler, [OpId; 7]) {
        let f = bench_graphs::fig1();
        let ts = ThreadedScheduler::new(f.graph, ResourceSet::uniform(2)).unwrap();
        (ts, f.v)
    }

    #[test]
    fn step_quota_halts_after_exactly_that_many_commits() {
        let g = bench_graphs::hal();
        let n = g.len();
        let order: Vec<OpId> = g.op_ids().collect();
        for quota in [0u64, 1, 3, n as u64, n as u64 + 5] {
            let mut ts = ThreadedScheduler::new(g.clone(), ResourceSet::classic(2, 2)).unwrap();
            let out = ts
                .schedule_all_budgeted(order.iter().copied(), &hls_ir::Budget::steps(quota), |_| false)
                .unwrap();
            let expect = (quota as usize).min(n);
            if expect < n {
                assert_eq!(out, RunOutcome::DeadlineExpired { scheduled: expect });
            } else {
                assert_eq!(out, RunOutcome::Completed);
            }
            assert_eq!(ts.scheduled_count(), expect, "quota {quota}");
            ts.check_invariants().unwrap();
            // The interrupted state is a valid prefix: the run resumes
            // to completion under a fresh budget.
            let resumed = ts
                .schedule_all_budgeted(order.iter().copied(), &hls_ir::Budget::NONE, |_| false)
                .unwrap();
            assert_eq!(resumed, RunOutcome::Completed);
            assert_eq!(ts.scheduled_count(), n);
            ts.check_invariants().unwrap();
        }
    }

    #[test]
    fn skewed_clock_expires_a_wall_deadline_within_one_commit() {
        use std::time::Duration;
        // Every commit advances the injected clock by an hour, so a
        // 30-minute deadline must be seen expired at the first
        // post-commit check — one scheduled op, no more.
        let _armed = hls_ir::faultinject::arm(hls_ir::faultinject::FaultPlan {
            clock_skew_per_commit: Duration::from_secs(3600),
            ..Default::default()
        }
        .in_run("skewed-run"));
        let _scope = hls_ir::faultinject::RunScope::enter("skewed-run");
        let g = bench_graphs::hal();
        let order: Vec<OpId> = g.op_ids().collect();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(2, 2)).unwrap();
        let budget = hls_ir::Budget::deadline_in(Duration::from_secs(1800));
        let out = ts.schedule_all_budgeted(order, &budget, |_| false).unwrap();
        assert_eq!(out, RunOutcome::DeadlineExpired { scheduled: 1 });
        ts.check_invariants().unwrap();
    }

    #[test]
    fn injected_panic_poisons_the_scheduler_not_the_caller() {
        let _armed =
            hls_ir::faultinject::arm(hls_ir::faultinject::FaultPlan::panic_at(3).in_run("victim"));
        let _scope = hls_ir::faultinject::RunScope::enter("victim");
        let g = bench_graphs::hal();
        let order: Vec<OpId> = g.op_ids().collect();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(2, 2)).unwrap();
        let err = ts.schedule_all(order.iter().copied()).unwrap_err();
        assert!(matches!(err, SchedError::Poisoned(_)), "{err}");
        assert!(ts.is_poisoned());
        // Poisoning is sticky: every later call short-circuits.
        let again = ts.schedule(order[0]).unwrap_err();
        assert!(matches!(again, SchedError::Poisoned(_)), "{again}");
        let run = ts
            .schedule_all_budgeted(order.iter().copied(), &hls_ir::Budget::NONE, |_| false)
            .unwrap_err();
        assert!(matches!(run, SchedError::Poisoned(_)), "{run}");
    }

    #[test]
    fn empty_state_has_zero_diameter() {
        let (ts, _) = fig1_scheduler();
        assert_eq!(ts.diameter(), 0);
        assert_eq!(ts.scheduled_count(), 0);
        ts.check_invariants().unwrap();
    }

    #[test]
    fn paper_figure1e_schedule_is_reproduced() {
        // Thread A: 3,4,6,7; thread B: 1,2,5 — the soft schedule of
        // Figure 1(e), 5 states.
        let (mut ts, v) = fig1_scheduler();
        for (op, thread) in [
            (v[2], 0), // 3
            (v[3], 0), // 4
            (v[5], 0), // 6
            (v[6], 0), // 7
            (v[0], 1), // 1
            (v[1], 1), // 2
            (v[4], 1), // 5
        ] {
            // Schedule into the exact threads of Figure 1(e): take the
            // feasible tail position of the desired thread.
            let placements = ts.feasible_placements(op).unwrap();
            let p = placements
                .iter()
                .copied()
                .rfind(|p| p.thread == thread)
                .unwrap();
            ts.commit(p, op);
        }
        ts.check_invariants().unwrap();
        assert_eq!(ts.diameter(), 5);
        assert_eq!(ts.chain(0), vec![v[2], v[3], v[5], v[6]]);
        assert_eq!(ts.chain(1), vec![v[0], v[1], v[4]]);
        // The artificial serialisation 2 ≺ 5 exists in the state even
        // though the dataflow graph has no such edge.
        let snap = ts.snapshot();
        let closure = hls_ir::algo::transitive_closure(&snap.graph);
        let i2 = snap.ops.iter().position(|&o| o == v[1]).unwrap();
        let i5 = snap.ops.iter().position(|&o| o == v[4]).unwrap();
        assert!(closure.get(i2, i5), "2 ≺ 5 must be serialised");
    }

    #[test]
    fn select_is_greedy_diameter_optimal_on_fig1() {
        let (mut ts, v) = fig1_scheduler();
        // Any topological meta order; select must keep the state diameter
        // equal to the best achievable at every step (Theorem 2).
        for op in [v[0], v[2], v[1], v[4], v[3], v[5], v[6]] {
            let best_possible: u64 = ts
                .feasible_placements(op)
                .unwrap()
                .into_iter()
                .map(|p| {
                    let mut clone = ts.clone();
                    clone.commit(p, op);
                    clone.diameter()
                })
                .min()
                .unwrap();
            ts.schedule(op).unwrap();
            assert_eq!(ts.diameter(), best_possible, "scheduling {op}");
            ts.check_invariants().unwrap();
        }
        assert_eq!(ts.diameter(), 5);
    }

    #[test]
    fn schedule_all_until_aborts_on_the_hook_and_reports_progress() {
        let (mut ts, v) = fig1_scheduler();
        // Abort as soon as the certified final-diameter bound reaches
        // 3 — with the graph-tail projection that happens well before
        // the prefix diameter itself does.
        let outcome = ts.schedule_all_until(v, |bound| bound >= 3).unwrap();
        let RunOutcome::Aborted { scheduled } = outcome else {
            panic!("must abort: the full schedule reaches diameter 5");
        };
        assert!(scheduled < 7, "aborted before the full order");
        assert_eq!(ts.scheduled_count(), scheduled);
        assert!(ts.final_lower_bound() >= 3);
        ts.check_invariants().unwrap();
        // A hook that never fires degenerates to schedule_all.
        let (mut ts2, v2) = fig1_scheduler();
        assert_eq!(
            ts2.schedule_all_until(v2, |_| false).unwrap(),
            RunOutcome::Completed
        );
        assert_eq!(ts2.scheduled_count(), 7);
    }

    #[test]
    fn final_lower_bound_is_certified_and_converges_to_the_diameter() {
        let g = bench_graphs::ewf();
        let order = hls_ir::algo::topo_order(&g).unwrap();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(2, 2)).unwrap();
        // Final diameter of this run, from a twin.
        let mut twin = ts.clone();
        twin.schedule_all(order.iter().copied()).unwrap();
        let final_d = twin.diameter();
        let mut last = 0;
        for &v in &order {
            ts.schedule(v).unwrap();
            let b = ts.final_lower_bound();
            assert!(b <= final_d, "bound {b} overshoots the final diameter {final_d}");
            assert!(b >= last, "bound must be monotone within a run");
            assert!(b >= ts.diameter(), "bound folds the prefix diameter");
            last = b;
        }
        assert_eq!(ts.final_lower_bound(), final_d, "at completion the bound is exact");
    }

    #[test]
    fn retyping_an_unscheduled_op_refreshes_the_bound_caches() {
        // Regression: retype_op mutates the graph even when the op is
        // not yet in the state; the static bound terms must follow or
        // final_lower_bound stops being a lower bound.
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Mul, 4, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, b).unwrap();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(1, 1)).unwrap();
        ts.retype_op(a, OpKind::Nop, 0); // before scheduling anything
        ts.schedule_all([a, b]).unwrap();
        assert_eq!(ts.diameter(), 1);
        assert!(ts.final_lower_bound() <= ts.diameter());
        assert!(ts.schedule_lower_bound() <= ts.diameter());
        ts.check_invariants().unwrap();
    }

    #[test]
    fn cached_diameter_tracks_retyping_shrinkage() {
        // retype_op may shrink delays; the cached running maximum must
        // be recomputed, not kept.
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Mul, 4, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, b).unwrap();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(1, 1)).unwrap();
        ts.schedule_all([a, b]).unwrap();
        assert_eq!(ts.diameter(), 5);
        ts.retype_op(a, OpKind::Nop, 0);
        assert_eq!(ts.diameter(), 1, "diameter must shrink with the delay");
        ts.check_invariants().unwrap();
    }

    #[test]
    fn distance_matches_placement_cost_and_gates_on_scheduling() {
        let (mut ts, v) = fig1_scheduler();
        assert_eq!(ts.distance(v[0]), None, "unscheduled has no distance");
        let p = ts.schedule(v[0]).unwrap();
        assert_eq!(ts.distance(v[0]), Some(p.cost));
        assert_eq!(ts.distance(OpId::from_index(999)), None);
        // After a full run, critical ops have distance == diameter.
        for op in [v[1], v[2], v[3], v[4], v[5], v[6]] {
            ts.schedule(op).unwrap();
        }
        let crit = ts
            .graph()
            .op_ids()
            .filter(|&op| ts.distance(op) == Some(ts.diameter()))
            .count();
        assert!(crit > 0, "some op must lie on the critical path");
    }

    #[test]
    fn scheduling_is_idempotent() {
        let (mut ts, v) = fig1_scheduler();
        let p1 = ts.schedule(v[0]).unwrap();
        let before = ts.snapshot();
        let p2 = ts.schedule(v[0]).unwrap();
        assert_eq!(p1.thread, p2.thread);
        assert_eq!(ts.scheduled_count(), 1);
        let after = ts.snapshot();
        assert_eq!(before.graph.len(), after.graph.len());
    }

    #[test]
    fn placement_cost_predicts_new_distance() {
        let (mut ts, v) = fig1_scheduler();
        for &op in &[v[0], v[1], v[3], v[2]] {
            let p = ts.select(op).unwrap();
            ts.commit(p, op);
            let n = ts.node_of[op.index()].unwrap();
            assert_eq!(
                ts.nh[n as usize].sdist + ts.tdist_of(n) - ts.nh[n as usize].delay,
                p.cost,
                "select's cost must equal the committed distance of {op}"
            );
        }
    }

    #[test]
    fn no_compatible_unit_is_reported() {
        let g = bench_graphs::hal();
        let muls: Vec<OpId> = g
            .op_ids()
            .filter(|&v| g.kind(v) == hls_ir::OpKind::Mul)
            .collect();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(2, 0)).unwrap();
        assert!(matches!(
            ts.schedule(muls[0]),
            Err(SchedError::NoCompatibleUnit(_, hls_ir::OpKind::Mul))
        ));
    }

    #[test]
    fn unknown_op_is_reported() {
        let (mut ts, _) = fig1_scheduler();
        let bogus = OpId::from_index(999);
        assert_eq!(ts.schedule(bogus), Err(SchedError::UnknownOp(bogus)));
    }

    #[test]
    fn typed_threads_respect_compatibility() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 2);
        let order = hls_ir::algo::topo_order(&g).unwrap();
        let mut ts = ThreadedScheduler::new(g, r).unwrap();
        ts.schedule_all(order).unwrap();
        ts.check_invariants().unwrap();
        for v in ts.graph().op_ids() {
            let k = ts.thread_of(v).unwrap();
            assert!(
                ts.resources().compatible(k, ts.graph().kind(v)),
                "{v} on incompatible thread {k}"
            );
        }
    }

    #[test]
    fn diameter_is_monotone_under_scheduling() {
        let g = bench_graphs::ewf();
        let order = hls_ir::algo::topo_order(&g).unwrap();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(2, 1)).unwrap();
        let mut last = 0;
        for v in order {
            ts.schedule(v).unwrap();
            let d = ts.diameter();
            assert!(d >= last, "Lemma 4 violated at {v}");
            last = d;
        }
    }

    #[test]
    fn extract_hard_matches_state_diameter_and_validates() {
        let g = bench_graphs::fir();
        let r = ResourceSet::classic(2, 2);
        let order = hls_ir::algo::topo_order(&g).unwrap();
        let mut ts = ThreadedScheduler::new(g, r.clone()).unwrap();
        ts.schedule_all(order).unwrap();
        let hard = ts.extract_hard();
        assert_eq!(hard.length(ts.graph()), ts.diameter());
        hls_ir::schedule::validate(ts.graph(), &r, &hard).unwrap();
    }

    #[test]
    fn wire_ops_get_singleton_threads() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let w = g.add_op(OpKind::WireDelay, 1, "w");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, w).unwrap();
        g.add_edge(w, b).unwrap();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(1, 0)).unwrap();
        ts.schedule_all([a, w, b]).unwrap();
        ts.check_invariants().unwrap();
        assert_eq!(ts.thread_count(), 2);
        assert_eq!(ts.thread_of(w), Some(1));
        assert_eq!(ts.diameter(), 3);
        let hard = ts.extract_hard();
        assert_eq!(hard.unit(w), None);
        assert_eq!(hard.start(b), Some(2));
    }

    #[test]
    fn refine_splice_absorbs_a_spill() {
        // Figure 1(c) scenario: spill the value of vertex 3; the threaded
        // schedule stretches from 5 to 6 states (the paper's number).
        let (mut ts, v) = fig1_scheduler();
        for (op, thread) in [
            (v[2], 0),
            (v[3], 0),
            (v[5], 0),
            (v[6], 0),
            (v[0], 1),
            (v[1], 1),
            (v[4], 1),
        ] {
            let placements = ts.feasible_placements(op).unwrap();
            let p = placements.iter().copied().rfind(|p| p.thread == thread).unwrap();
            ts.commit(p, op);
        }
        assert_eq!(ts.diameter(), 5);
        let inserted = ts
            .refine_splice(
                v[2],
                v[3],
                [
                    (OpKind::WireDelay, 1, "st".to_string()),
                    (OpKind::WireDelay, 1, "ld".to_string()),
                ],
            )
            .unwrap();
        assert_eq!(inserted.len(), 2);
        ts.check_invariants().unwrap();
        assert_eq!(ts.diameter(), 6, "paper: spill stretches 5 -> 6 states");
    }

    #[test]
    fn refine_add_op_rejects_cycles() {
        let (mut ts, v) = fig1_scheduler();
        ts.schedule_all(v).unwrap();
        let err = ts.refine_add_op(OpKind::Add, 1, "bad", &[v[6]], &[v[0]]);
        assert!(matches!(err, Err(SchedError::WouldCycle(_))));
    }

    #[test]
    fn state_dot_shows_threads_and_both_edge_styles() {
        let (mut ts, v) = fig1_scheduler();
        ts.schedule_all(v).unwrap();
        let dot = ts.state_to_dot("fig1");
        assert!(dot.starts_with("digraph \"fig1\""));
        assert!(dot.contains("style=solid"), "chain edges present");
        assert!(dot.contains("thr 0"));
        assert!(dot.contains("thr 1"));
        // No sentinels leak into the rendering: node count = 7.
        assert_eq!(dot.matches("fillcolor").count(), 7);
    }

    #[test]
    fn snapshot_spans_exactly_the_scheduled_ops() {
        let (mut ts, v) = fig1_scheduler();
        ts.schedule(v[0]).unwrap();
        ts.schedule(v[2]).unwrap();
        let snap = ts.snapshot();
        assert_eq!(snap.graph.len(), 2);
        assert_eq!(snap.ops.len(), 2);
        assert!(snap.ops.contains(&v[0]));
        assert!(snap.ops.contains(&v[2]));
    }

    #[test]
    fn repeated_head_insertion_exhausts_gaps_and_renumbers() {
        // 200 independent ops forced into the head of one thread: the
        // midpoint positions collapse until renumber_chain fires (many
        // times), and the state must stay coherent throughout.
        let mut g = PrecedenceGraph::new();
        let ids: Vec<OpId> = (0..200)
            .map(|i| g.add_op(OpKind::Add, 1, format!("h{i}")))
            .collect();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(1)).unwrap();
        for &v in &ids {
            ts.commit(
                Placement {
                    thread: 0,
                    after: None,
                    cost: 0,
                },
                v,
            );
        }
        ts.check_invariants().unwrap();
        let chain = ts.chain(0);
        let reversed: Vec<OpId> = ids.iter().rev().copied().collect();
        assert_eq!(chain, reversed, "head insertion reverses the order");
        assert_eq!(ts.diameter(), 200);
    }

    #[test]
    #[should_panic(expected = "scheduling state must stay acyclic")]
    fn forged_placement_that_closes_a_cycle_fails_fast() {
        // commit() documents panicking on placements not produced by
        // select(): placing an ancestor *after* its scheduled
        // descendant closes a state cycle, and the incremental engine
        // must fail fast like the seed's relabel did.
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, b).unwrap();
        let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(1)).unwrap();
        ts.schedule(b).unwrap();
        ts.commit(
            Placement {
                thread: 0,
                after: Some(b),
                cost: 0,
            },
            a,
        );
    }

    #[test]
    fn refine_replay_matches_scheduling_the_extension_directly() {
        use hls_ir::Budget;
        // Schedule a base graph, extend it with a small cone, replay.
        let base = hls_ir::bench_graphs::ewf();
        let resources = ResourceSet::classic(2, 1).with(ResourceClass::MemPort, 1);
        let order = crate::meta::MetaSchedule::ListBased
            .order(&base, &resources)
            .unwrap();
        let mut ts = ThreadedScheduler::new(base.clone(), resources.clone()).unwrap();
        ts.schedule_all(order).unwrap();

        let mut target = base.clone();
        let sinks = target.sinks();
        let c1 = target.add_op(OpKind::Add, 1, "eco1");
        target.add_edge(sinks[0], c1).unwrap();
        let c2 = target.add_op(OpKind::Add, 1, "eco2");
        target.add_edge(c1, c2).unwrap();
        // A new op whose pred has a *larger* id than an earlier new op
        // (exercises the deferred-edge path).
        let c3 = target.add_op(OpKind::Mul, 2, "eco3");
        target.add_edge(c3, c2).unwrap();

        let added = ts.refine_replay(&target, &Budget::NONE).unwrap();
        assert_eq!(added, vec![c1, c2, c3]);
        assert_eq!(ts.graph().len(), target.len());
        assert!(ts.graph().has_edge(c3, c2));
        ts.check_invariants().unwrap();

        // Non-extensions and exhausted budgets are typed errors.
        let mut other = base.clone();
        let v0 = other.op_ids().next().unwrap();
        other.set_delay(v0, 99);
        let mut ts2 = ThreadedScheduler::new(base.clone(), resources.clone()).unwrap();
        assert!(matches!(
            ts2.refine_replay(&other, &Budget::NONE),
            Err(SchedError::NotAnExtension)
        ));
        let mut ts3 = ThreadedScheduler::new(base, resources).unwrap();
        assert!(matches!(
            ts3.refine_replay(&target, &Budget::steps(1)),
            Err(SchedError::Timeout)
        ));
    }

    #[test]
    fn refine_graft_extends_a_state_whose_ids_have_diverged() {
        use hls_ir::Budget;
        // Schedule the base, then mutate the state's behavior the way
        // the flow does (append a refinement op), so target ids no
        // longer line up with state ids — the case refine_replay
        // rejects and refine_graft exists for.
        let base = hls_ir::bench_graphs::ewf();
        let resources = ResourceSet::classic(2, 1).with(ResourceClass::MemPort, 1);
        let order = crate::meta::MetaSchedule::ListBased
            .order(&base, &resources)
            .unwrap();
        let mut ts = ThreadedScheduler::new(base.clone(), resources).unwrap();
        ts.schedule_all(order).unwrap();
        let sink = ts.graph().sinks()[0];
        ts.refine_add_op(OpKind::Nop, 1, "wire", &[sink], &[])
            .unwrap();

        let mut target = base.clone();
        let sinks = target.sinks();
        let c1 = target.add_op(OpKind::Add, 1, "eco1");
        target.add_edge(sinks[0], c1).unwrap();
        let c2 = target.add_op(OpKind::Mul, 2, "eco2");
        target.add_edge(c1, c2).unwrap();
        assert!(matches!(
            ts.clone().refine_replay(&target, &Budget::NONE),
            Err(SchedError::NotAnExtension)
        ));

        let mut map: Vec<OpId> = (0..base.len()).map(OpId::from_index).collect();
        let before = ts.graph().len();
        let added = ts.refine_graft(&target, &mut map, &Budget::NONE).unwrap();
        assert_eq!(added.len(), 2);
        assert_eq!(map.len(), target.len());
        // The grafted ops landed beyond the diverged prefix, wired to
        // the *mapped* endpoints.
        assert!(added.iter().all(|v| v.index() >= before));
        assert!(ts.graph().has_edge(sinks[0], map[c1.index()]));
        assert!(ts.graph().has_edge(map[c1.index()], map[c2.index()]));
        ts.check_invariants().unwrap();

        // Budget expiry stays typed.
        let mut map2: Vec<OpId> = (0..base.len()).map(OpId::from_index).collect();
        assert!(matches!(
            ts.refine_graft(&target, &mut map2, &Budget::steps(0)),
            Err(SchedError::Timeout)
        ));
    }

    #[test]
    fn arena_reset_replays_bit_identically_to_a_fresh_clone() {
        // The arena path: schedule, reset_to, schedule a *different*
        // order — the reused state must behave exactly like a fresh
        // clone of the template (same diameters, same hard schedules,
        // invariants intact), including after a reset of a mid-run
        // (partially scheduled) state.
        let g = hls_ir::bench_graphs::ewf();
        let resources = ResourceSet::classic(2, 2);
        let template = ThreadedScheduler::new(g.clone(), resources.clone()).unwrap();
        let topo = crate::meta::MetaSchedule::Topological
            .order(&g, &resources)
            .unwrap();
        let dfs = crate::meta::MetaSchedule::Dfs.order(&g, &resources).unwrap();

        let mut reused = template.clone();
        reused.schedule_all(topo.iter().copied()).unwrap();
        // Partially re-run, then reset again: a parked aborted run.
        assert!(reused.reset_to(&template));
        for &v in topo.iter().take(g.len() / 2) {
            let p = reused.select(v).unwrap();
            reused.commit(p, v);
        }
        assert!(reused.reset_to(&template));
        reused.schedule_all(dfs.iter().copied()).unwrap();

        let mut fresh = template.clone();
        fresh.schedule_all(dfs.iter().copied()).unwrap();

        assert_eq!(reused.diameter(), fresh.diameter());
        assert_eq!(reused.history(), fresh.history());
        for v in g.op_ids() {
            assert_eq!(reused.thread_of(v), fresh.thread_of(v));
        }
        let (hr, hf) = (reused.extract_hard(), fresh.extract_hard());
        for v in g.op_ids() {
            assert_eq!(hr.start(v), hf.start(v));
        }
        reused.check_invariants().unwrap();
    }

    #[test]
    fn arena_reset_refuses_diverged_or_poisoned_states() {
        let g = hls_ir::bench_graphs::hal();
        let resources = ResourceSet::classic(2, 2);
        let template = ThreadedScheduler::new(g.clone(), resources.clone()).unwrap();

        // Refinement grows the graph copy-on-write: the cores diverge
        // and the reset must refuse rather than replay the wrong graph.
        let order = crate::meta::MetaSchedule::Topological
            .order(&g, &resources)
            .unwrap();
        let mut refined = template.clone();
        refined.schedule_all(order).unwrap();
        let sink = refined.graph().sinks()[0];
        refined
            .refine_add_op(OpKind::Nop, 1, "wire", &[sink], &[])
            .unwrap();
        assert!(!refined.reset_to(&template));

        // Different resources refuse too.
        let other = ThreadedScheduler::new(g.clone(), ResourceSet::classic(1, 1)).unwrap();
        let mut mine = other.clone();
        assert!(!mine.reset_to(&template));
    }

    #[test]
    fn wire_threads_grow_the_stride_coherently() {
        // Enough wire ops to force several stride doublings.
        let mut g = PrecedenceGraph::new();
        let mut prev = g.add_op(OpKind::Add, 1, "a0");
        let mut all = vec![prev];
        for i in 0..20 {
            let w = g.add_op(OpKind::WireDelay, 1, format!("w{i}"));
            g.add_edge(prev, w).unwrap();
            prev = w;
            all.push(w);
        }
        let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(1)).unwrap();
        ts.schedule_all(all).unwrap();
        ts.check_invariants().unwrap();
        assert_eq!(ts.thread_count(), 21);
        assert_eq!(ts.diameter(), 21);
    }
}
