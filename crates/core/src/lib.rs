//! Soft scheduling for high level synthesis.
//!
//! This crate is the primary contribution of the reproduced paper —
//! Zhu & Gajski, *Soft Scheduling in High Level Synthesis* (DAC 1999):
//!
//! * [`soft`] — the formal framework (Section 3): scheduling states as
//!   precedence graphs, the *initial / correctness / incremental*
//!   conditions of Definition 3, snapshot extraction and checkable
//!   invariants (including threadedness, Definition 4, and hardness).
//! * [`ThreadedScheduler`] — Algorithm 1 (Section 4): the linear,
//!   online-optimal threaded scheduler. Each functional unit is a
//!   *thread*; scheduled operations are totally ordered within a thread
//!   and partially ordered across threads. `select` finds the
//!   diameter-minimising insertion position without speculation;
//!   `commit` updates the state by the six edge rules of Figure 2.
//! * [`meta`] — the four meta schedules of Section 5 (DFS, topological,
//!   path-based, list-based) plus seeded random orders for ablation.
//! * [`ExhaustiveScheduler`] — the naive `O(|V|² · |E|)` speculative
//!   implementation the paper describes and rejects; retained as the
//!   optimality oracle (Theorem 2) and the complexity baseline
//!   (Theorem 3).
//! * [`modulo`] — loop pipelining as soft scheduling: the
//!   [`ModuloScheduler`] reads time modulo an initiation interval
//!   (wrap-around unit reservation, recurrence-aware precedence over
//!   distance-carrying edges) and searches IIs upward from the
//!   certified `MII = max(ResMII, RecMII)` bound.
//! * [`refine`] — the soft-scheduling payoff (Section 1 / Figure 1):
//!   absorbing spill code, SSA move resolution and post-layout wire
//!   delays into an existing schedule *without* re-running scheduling,
//!   plus the "trivial fix" hard-schedule patching used as the
//!   comparison.
//!
//! # Example
//!
//! ```
//! use hls_ir::{bench_graphs, ResourceSet};
//! use threaded_sched::{meta::MetaSchedule, ThreadedScheduler};
//!
//! let g = bench_graphs::hal();
//! let resources = ResourceSet::classic(2, 2); // 2 ALUs, 2 multipliers
//! let order = MetaSchedule::Topological.order(&g, &resources)?;
//! let mut ts = ThreadedScheduler::new(g, resources)?;
//! ts.schedule_all(order)?;
//! assert!(ts.diameter() >= 6); // HAL critical path
//! let hard = ts.extract_hard();
//! assert_eq!(hard.length(ts.graph()), ts.diameter());
//! # Ok::<(), threaded_sched::SchedError>(())
//! ```

#![warn(missing_docs)]

pub mod exhaustive;
pub mod meta;
pub mod modulo;
pub mod parallel;
pub mod reference;
pub mod refine;
pub mod soft;
mod threaded;

pub use exhaustive::ExhaustiveScheduler;
pub use modulo::{ModuloOutcome, ModuloScheduler};
pub use parallel::{ParallelConfig, ParallelRun, ParallelScheduler};
pub use reference::ReferenceScheduler;
pub use soft::{OnlineScheduler, StateSnapshot};
pub use threaded::{Placement, RunOutcome, ThreadedScheduler};

use hls_ir::{IrError, OpId, OpKind};
use std::error::Error;
use std::fmt;

/// Renders a `catch_unwind` payload as text for
/// [`SchedError::Poisoned`] — panics carry `&str` or `String`
/// payloads in practice; anything else gets a generic tag.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Errors produced by the soft schedulers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchedError {
    /// The underlying IR rejected an operation (cycle, unknown op, ...).
    Ir(IrError),
    /// No thread (functional unit) can execute this operation kind.
    NoCompatibleUnit(OpId, OpKind),
    /// The operation id is outside the scheduler's graph.
    UnknownOp(OpId),
    /// An operation that must already be in the state is not.
    NotScheduled(OpId),
    /// A requested refinement would create a dependency cycle.
    WouldCycle(OpId),
    /// The baseline scheduler used by a meta schedule failed.
    Baseline(String),
    /// No modulo schedule exists (or was found within the eviction
    /// budget) at this initiation interval; the II search moves on.
    IiInfeasible(u64),
    /// The run's [`hls_ir::Budget`] expired (wall deadline or step
    /// quota) before a complete schedule was committed.
    Timeout,
    /// A scheduler (or a racing strategy) panicked mid-commit; its
    /// state is unusable. The payload names the panic / the strategy.
    Poisoned(String),
    /// A capacity limit was exceeded (e.g. the reachability index's
    /// chain-id space) — the input is too large for this engine.
    ResourceExhausted(String),
    /// A caller-supplied structure is internally inconsistent — e.g. a
    /// graft translation map with duplicate entries, which would
    /// silently alias two submitted operations onto one scheduled op
    /// (last-write-wins). Rejected up front; the state is untouched.
    Malformed(String),
    /// An incremental replay was asked to grow the state toward a
    /// graph that does not extend the current behavior (or carries
    /// loop edges the acyclic replay cannot honour); see
    /// [`ThreadedScheduler::refine_replay`].
    NotAnExtension,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Ir(e) => write!(f, "ir error: {e}"),
            SchedError::NoCompatibleUnit(v, k) => {
                write!(f, "no thread can execute operation {v} of kind {k}")
            }
            SchedError::UnknownOp(v) => write!(f, "unknown operation {v}"),
            SchedError::NotScheduled(v) => write!(f, "operation {v} is not scheduled"),
            SchedError::WouldCycle(v) => {
                write!(f, "refinement around operation {v} would create a cycle")
            }
            SchedError::Baseline(msg) => write!(f, "baseline scheduler failed: {msg}"),
            SchedError::IiInfeasible(ii) => {
                write!(f, "no modulo schedule at initiation interval {ii}")
            }
            SchedError::Timeout => write!(f, "scheduling budget expired"),
            SchedError::Poisoned(what) => write!(f, "scheduler poisoned: {what}"),
            SchedError::ResourceExhausted(what) => write!(f, "resource exhausted: {what}"),
            SchedError::Malformed(what) => write!(f, "malformed request: {what}"),
            SchedError::NotAnExtension => {
                write!(f, "target graph does not extend the scheduled behavior")
            }
        }
    }
}

impl From<hls_ir::CapacityError> for SchedError {
    fn from(e: hls_ir::CapacityError) -> Self {
        SchedError::ResourceExhausted(e.to_string())
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for SchedError {
    fn from(e: IrError) -> Self {
        SchedError::Ir(e)
    }
}
