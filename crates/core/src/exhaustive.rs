//! The naive speculative scheduler the paper describes — and rejects —
//! in Section 4.2.
//!
//! For every candidate position it *speculatively* commits the operation,
//! recomputes the diameter of the whole resulting state, and undoes the
//! change; the position with the smallest resulting diameter wins. This
//! costs `O(|V|)` positions × `O(|V| · K)` evaluation per scheduled
//! operation versus Algorithm 1's single `O(|V| · K)` pass.
//!
//! It is retained for two purposes:
//!
//! * **optimality oracle** — Theorem 2 says Algorithm 1's `select`
//!   reaches the same minimal diameter; the property tests check this on
//!   every step of randomised runs;
//! * **complexity baseline** — the Theorem 3 benchmark plots both
//!   schedulers' scaling.

use crate::{soft::OnlineScheduler, soft::StateSnapshot, Placement, SchedError, ThreadedScheduler};
use hls_ir::{OpId, PrecedenceGraph, ResourceClass, ResourceSet};

/// Exhaustive-speculation scheduler with the same state semantics as
/// [`ThreadedScheduler`].
#[derive(Clone, Debug)]
pub struct ExhaustiveScheduler {
    inner: ThreadedScheduler,
}

impl ExhaustiveScheduler {
    /// Creates an exhaustive scheduler over `g`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedScheduler::new`].
    pub fn new(g: PrecedenceGraph, resources: ResourceSet) -> Result<Self, SchedError> {
        Ok(ExhaustiveScheduler {
            inner: ThreadedScheduler::new(g, resources)?,
        })
    }

    /// The wrapped threaded state.
    pub fn inner(&self) -> &ThreadedScheduler {
        &self.inner
    }

    /// Schedules `v` at the position whose *speculative commit* yields
    /// the smallest state diameter. Returns the chosen placement and that
    /// diameter.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThreadedScheduler::schedule`].
    pub fn schedule(&mut self, v: OpId) -> Result<(Placement, u64), SchedError> {
        if self.inner.is_scheduled(v) {
            let p = self.inner.schedule(v)?;
            return Ok((p, self.inner.diameter()));
        }
        if self.inner.graph().kind(v).resource_class() == ResourceClass::Wire {
            let p = self.inner.schedule(v)?;
            return Ok((p, self.inner.diameter()));
        }
        let mut best: Option<(u64, Placement)> = None;
        for p in self.inner.feasible_placements(v)? {
            let mut spec = self.inner.clone();
            spec.commit(p, v);
            let d = spec.diameter();
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, p));
            }
        }
        let (d, p) = best.ok_or_else(|| {
            SchedError::NoCompatibleUnit(v, self.inner.graph().kind(v))
        })?;
        self.inner.commit(p, v);
        Ok((p, d))
    }

    /// Schedules every operation of `order` in sequence.
    ///
    /// # Errors
    ///
    /// Propagates the first error.
    pub fn schedule_all(
        &mut self,
        order: impl IntoIterator<Item = OpId>,
    ) -> Result<(), SchedError> {
        for v in order {
            self.schedule(v)?;
        }
        Ok(())
    }

    /// Current state diameter.
    pub fn diameter(&self) -> u64 {
        self.inner.diameter()
    }
}

impl OnlineScheduler for ExhaustiveScheduler {
    fn schedule_op(&mut self, v: OpId) -> Result<(), SchedError> {
        self.schedule(v).map(|_| ())
    }

    fn is_scheduled(&self, v: OpId) -> bool {
        self.inner.is_scheduled(v)
    }

    fn snapshot(&self) -> StateSnapshot {
        self.inner.snapshot()
    }

    fn state_diameter(&self) -> u64 {
        self.inner.diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::MetaSchedule;
    use hls_ir::bench_graphs;

    /// Theorem 2 on the benchmarks: at every step, Algorithm 1's `select`
    /// reaches the same minimal next-state diameter as exhaustive
    /// speculation over the *same* state. (Two independently evolving
    /// greedy trajectories may tie-break into different states, so the
    /// comparison must share the state.)
    #[test]
    fn theorem2_select_matches_exhaustive_on_benchmarks() {
        use crate::ThreadedScheduler;
        for (name, g) in bench_graphs::all() {
            let r = ResourceSet::classic(2, 2);
            let order = MetaSchedule::Topological.order(&g, &r).unwrap();
            let mut ts = ThreadedScheduler::new(g, r).unwrap();
            for &v in &order {
                let oracle_best: u64 = ts
                    .feasible_placements(v)
                    .unwrap()
                    .into_iter()
                    .map(|p| {
                        let mut spec = ts.clone();
                        spec.commit(p, v);
                        spec.diameter()
                    })
                    .min()
                    .unwrap();
                ts.schedule(v).unwrap();
                assert_eq!(ts.diameter(), oracle_best, "{name}: diverged at {v}");
            }
        }
    }

    #[test]
    fn exhaustive_is_idempotent_too() {
        let f = bench_graphs::fig1();
        let mut ex = ExhaustiveScheduler::new(f.graph, ResourceSet::uniform(2)).unwrap();
        ex.schedule(f.v[0]).unwrap();
        let d1 = ex.diameter();
        ex.schedule(f.v[0]).unwrap();
        assert_eq!(ex.diameter(), d1);
        assert!(ex.is_scheduled(f.v[0]));
    }

    #[test]
    fn exhaustive_handles_wire_ops() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(hls_ir::OpKind::Add, 1, "a");
        let w = g.add_op(hls_ir::OpKind::WireDelay, 2, "w");
        g.add_edge(a, w).unwrap();
        let mut ex = ExhaustiveScheduler::new(g, ResourceSet::uniform(1)).unwrap();
        ex.schedule_all([a, w]).unwrap();
        assert_eq!(ex.diameter(), 3);
    }
}
