//! Partition-parallel scheduling: block-decomposed soft scheduling for
//! million-op behaviors.
//!
//! The sequential engine's cost at scale is dominated by whole-graph
//! terms: the chain-cover reachability index build is superlinear in
//! `|V|`, and at 10⁶ ops the flat per-node tables fall out of cache.
//! [`ParallelScheduler`] removes both by decomposition:
//!
//! 1. **Partition.** [`hls_ir::partition`] splits the behavior into
//!    balanced blocks whose quotient is acyclic and topologically
//!    numbered (every edge goes to an equal-or-higher block).
//! 2. **Block scheduling.** Scoped worker threads claim blocks and run
//!    the ordinary [`ThreadedScheduler`] on each induced subgraph with
//!    the *full* resource set — each block time-slices the same
//!    functional units, so per-unit chains concatenate across blocks.
//!    Workers share an atomic per-unit-set reservation ledger: each
//!    committed block deposits its delay-sums and folds the implied
//!    work floor `⌈ΣW_U / |U|⌉` into a certified lower bound on any
//!    complete schedule, the partition-parallel analogue of the
//!    portfolio's packed atomic incumbent.
//! 3. **Stitch.** Per-unit chains are concatenated in block (quotient
//!    topological) order, and the cut edges are spliced back: one
//!    linear longest-path pass over the combined threaded graph
//!    (behavior edges ∪ chain edges) assigns every operation its start
//!    time. The combination is acyclic *by construction* — behavior
//!    edges never cross blocks backwards, chain edges are intra-block
//!    or seam-forward — so the stitched schedule is always valid.
//!
//! Below [`ParallelConfig::sequential_cutoff`] the partition overhead
//! cannot pay for itself, so `run` uses the sequential engine directly
//! — the small-graph semantics of the parallel scheduler are
//! *bit-identical* to [`ThreadedScheduler`], which is what the golden
//! equivalence suite pins. Above the cutoff, the stitched result is
//! valid by construction and its quality is pinned differentially
//! (see `crates/core/tests/parallel_golden.rs`).
//!
//! Results are deterministic in (graph, resources, config): block
//! schedules depend only on their subgraph, never on which worker ran
//! them or in what order — so 1, 2 and 8 workers produce bit-identical
//! schedules.
//!
//! A stitched run can be materialised back into a live
//! [`ThreadedScheduler`] with [`ParallelScheduler::materialize`]: the
//! stitched placement is replayed through the engine's own `commit`
//! (tail inserts in combined topological order), which rebuilds the
//! full incremental state — reach vectors, lazy labels, extrema — so
//! ECO refinement (`refine_splice`, `refine_graft`) continues to work
//! on partition-parallel results exactly as on sequential ones.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use hls_ir::partition::{self, Partition, PartitionConfig};
use hls_ir::{HardSchedule, OpId, PrecedenceGraph, ResourceClass, ResourceSet};

use crate::meta::MetaSchedule;
use crate::threaded::{Placement, ThreadedScheduler};
use crate::SchedError;

/// Configuration for [`ParallelScheduler`].
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Worker threads scheduling blocks. Results never depend on this
    /// (workers only change wall time), so any value is safe.
    pub workers: usize,
    /// Number of partition blocks; `0` picks
    /// [`hls_ir::partition::auto_parts`] from the graph size and
    /// worker count.
    pub parts: usize,
    /// Meta order used inside every block.
    pub meta: MetaSchedule,
    /// Partition balance tolerance (see [`PartitionConfig`]).
    pub tolerance: f64,
    /// Graphs with at most this many ops are scheduled by the plain
    /// sequential engine (identical results, no partition overhead).
    /// Set to `0` to force the partition-parallel path everywhere —
    /// the differential tests do, to exercise the stitch on small
    /// graphs.
    pub sequential_cutoff: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: 8,
            parts: 0,
            meta: MetaSchedule::Topological,
            tolerance: 0.10,
            sequential_cutoff: 8192,
        }
    }
}

/// The result of one partition-parallel run.
#[derive(Clone, Debug)]
pub struct ParallelRun {
    /// The stitched hard schedule: start time for every op, unit for
    /// every non-wire op.
    pub schedule: HardSchedule,
    /// Stitched state diameter (`max` finish time).
    pub diameter: u64,
    /// Certified lower bound on any complete schedule of this graph:
    /// `max` of the atomic reservation ledger's per-unit-set work
    /// floors and the behavior critical path. Always `<= diameter`.
    pub lower_bound: u64,
    /// Per-unit chains of the stitched state, in execution order.
    pub unit_threads: Vec<Vec<OpId>>,
    /// A topological order of the *combined* threaded graph (behavior
    /// edges plus chain edges) — the replay order used by
    /// [`ParallelScheduler::materialize`].
    pub meta_order: Vec<OpId>,
    /// Cut edges of the partition (0 when the sequential path ran).
    pub cut_edges: usize,
    /// Diameter of each block's local schedule (empty when the
    /// sequential path ran).
    pub block_diameters: Vec<u64>,
}

/// Per-block output produced by a worker.
struct BlockOut {
    /// Per-unit chains in global op ids.
    unit_chains: Vec<Vec<OpId>>,
    diameter: u64,
}

/// The partition-parallel scheduler. See the [module docs](self).
#[derive(Debug)]
pub struct ParallelScheduler {
    g: PrecedenceGraph,
    resources: ResourceSet,
    cfg: ParallelConfig,
    partition: Partition,
}

impl ParallelScheduler {
    /// Partitions `g` and prepares a parallel run.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Ir`] if `g` is cyclic (loop kernels go
    /// through the modulo scheduler, not this one).
    pub fn new(
        g: PrecedenceGraph,
        resources: ResourceSet,
        cfg: ParallelConfig,
    ) -> Result<Self, SchedError> {
        g.validate()?;
        let parts = if cfg.parts == 0 {
            partition::auto_parts(g.len(), cfg.workers.max(1))
        } else {
            cfg.parts
        };
        let pcfg = PartitionConfig {
            parts,
            tolerance: cfg.tolerance,
            ..PartitionConfig::default()
        };
        let partition = {
            let _span = hls_obs::obs_span!(ParallelPartition, "", g.len() as u64);
            partition::partition(&g, &pcfg)?
        };
        Ok(ParallelScheduler { g, resources, cfg, partition })
    }

    /// The behavior graph.
    pub fn graph(&self) -> &PrecedenceGraph {
        &self.g
    }

    /// The block assignment this scheduler will run with.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Schedules the whole behavior: block scheduling on worker
    /// threads, then the stitch pass. Deterministic in
    /// (graph, resources, config); independent of `workers`.
    ///
    /// # Errors
    ///
    /// Propagates the first block's [`SchedError`]; a panicking worker
    /// surfaces as [`SchedError::Poisoned`] (the panic does not cross
    /// this boundary).
    pub fn run(&self) -> Result<ParallelRun, SchedError> {
        if self.g.len() <= self.cfg.sequential_cutoff {
            return self.run_sequential();
        }
        let blocks = self.partition.blocks();
        let (outs, ledger_floor) = {
            let _span = hls_obs::obs_span!(ParallelBlocks, "", blocks.len() as u64);
            self.schedule_blocks(&blocks)?
        };
        let _span = hls_obs::obs_span!(ParallelStitch, "", blocks.len() as u64);
        self.stitch(&blocks, &outs, ledger_floor)
    }

    /// The small-graph path: the plain sequential engine, bit-identical
    /// to `ThreadedScheduler` with the same meta order.
    fn run_sequential(&self) -> Result<ParallelRun, SchedError> {
        let order = self.cfg.meta.order(&self.g, &self.resources)?;
        let mut ts = ThreadedScheduler::new(self.g.clone(), self.resources.clone())?;
        ts.schedule_all(order.iter().copied())?;
        let schedule = ts.extract_hard();
        let unit_threads = (0..self.resources.k()).map(|k| ts.chain(k)).collect();
        Ok(ParallelRun {
            diameter: ts.diameter(),
            lower_bound: ts.final_lower_bound(),
            schedule,
            unit_threads,
            meta_order: order,
            cut_edges: 0,
            block_diameters: Vec::new(),
        })
    }

    /// Schedules every block on `cfg.workers` scoped threads sharing
    /// the atomic reservation ledger. Returns the block outputs plus
    /// the ledger's folded work floor (order-independent, so it is
    /// deterministic across worker counts).
    fn schedule_blocks(
        &self,
        blocks: &[Vec<OpId>],
    ) -> Result<(Vec<BlockOut>, u64), SchedError> {
        // Per-unit-set reservation groups: ops sharing the same
        // compatible-unit set serialise on those units, so each group's
        // delay-sum over unit-count floors the final diameter.
        let mut groups: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut group_units: Vec<u64> = Vec::new();
        let mut group_of_kind: Vec<(hls_ir::OpKind, Option<usize>)> = Vec::new();
        let mut group_of = |kind: hls_ir::OpKind, resources: &ResourceSet| -> Option<usize> {
            if let Some(&(_, gid)) = group_of_kind.iter().find(|(k, _)| *k == kind) {
                return gid;
            }
            let units = resources.compatible_units(kind);
            let gid = if units.is_empty() || kind.resource_class() == ResourceClass::Wire {
                None
            } else {
                Some(*groups.entry(units.clone()).or_insert_with(|| {
                    group_units.push(units.len() as u64);
                    group_units.len() - 1
                }))
            };
            group_of_kind.push((kind, gid));
            gid
        };
        let mut op_group: Vec<u32> = Vec::with_capacity(self.g.len());
        for v in self.g.op_ids() {
            op_group
                .push(group_of(self.g.kind(v), &self.resources).map_or(u32::MAX, |g| g as u32));
        }

        let ledger: Vec<AtomicU64> = group_units.iter().map(|_| AtomicU64::new(0)).collect();
        let floor = AtomicU64::new(0);
        let next = AtomicUsize::new(0);
        let outs: Mutex<Vec<Option<BlockOut>>> = Mutex::new((0..blocks.len()).map(|_| None).collect());
        let failure: Mutex<Option<SchedError>> = Mutex::new(None);

        let worker = || {
            // Reusable global → local id map, cleared between blocks.
            let mut local_of: Vec<u32> = vec![u32::MAX; self.g.len()];
            loop {
                let b = next.fetch_add(1, Ordering::Relaxed);
                if b >= blocks.len() || failure.lock().unwrap().is_some() {
                    break;
                }
                let job = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.schedule_block(&blocks[b], &mut local_of)
                }));
                let result = match job {
                    Ok(r) => r,
                    Err(payload) => {
                        Err(SchedError::Poisoned(crate::panic_message(payload.as_ref())))
                    }
                };
                match result {
                    Ok(out) => {
                        // Deposit this block's work into the shared
                        // reservation ledger and fold the implied floor.
                        for &v in &blocks[b] {
                            let gid = op_group[v.index()];
                            if gid == u32::MAX {
                                continue;
                            }
                            let w = self.g.delay(v);
                            if w == 0 {
                                continue;
                            }
                            let total =
                                ledger[gid as usize].fetch_add(w, Ordering::Relaxed) + w;
                            let bound = total.div_ceil(group_units[gid as usize]);
                            floor.fetch_max(bound, Ordering::Relaxed);
                        }
                        outs.lock().unwrap()[b] = Some(out);
                    }
                    Err(e) => {
                        failure.lock().unwrap().get_or_insert(e);
                    }
                }
            }
        };

        let workers = self.cfg.workers.clamp(1, blocks.len().max(1));
        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(worker);
                }
            });
        }

        if let Some(e) = failure.lock().unwrap().take() {
            return Err(e);
        }
        let outs = outs.into_inner().unwrap();
        let mut done = Vec::with_capacity(outs.len());
        for (b, o) in outs.into_iter().enumerate() {
            done.push(o.unwrap_or_else(|| panic!("block {b} finished without a result")));
        }
        Ok((done, floor.load(Ordering::Relaxed)))
    }

    /// Schedules one block's induced subgraph with the ordinary
    /// sequential engine and returns its chains in global ids.
    fn schedule_block(&self, ops: &[OpId], local_of: &mut [u32]) -> Result<BlockOut, SchedError> {
        let mut sub = PrecedenceGraph::with_capacity(ops.len());
        for (i, &v) in ops.iter().enumerate() {
            local_of[v.index()] = i as u32;
            sub.add_op(self.g.kind(v), self.g.delay(v), self.g.label(v));
        }
        for &v in ops {
            for &s in self.g.succs(v) {
                let t = local_of[s.index()];
                if t != u32::MAX {
                    sub.add_edge(
                        OpId::from_index(local_of[v.index()] as usize),
                        OpId::from_index(t as usize),
                    )?;
                }
            }
        }
        let order = self.cfg.meta.order(&sub, &self.resources)?;
        let mut ts = ThreadedScheduler::new(sub, self.resources.clone())?;
        ts.schedule_all(order)?;
        let unit_chains = (0..self.resources.k())
            .map(|k| ts.chain(k).into_iter().map(|l| ops[l.index()]).collect())
            .collect();
        let out = BlockOut { unit_chains, diameter: ts.diameter() };
        for &v in ops {
            local_of[v.index()] = u32::MAX;
        }
        Ok(out)
    }

    /// The stitch pass: concatenates per-unit chains in block order and
    /// computes start times by one longest-path sweep over the combined
    /// threaded graph — behavior edges (cut edges included) plus chain
    /// edges. See the module docs for the acyclicity argument.
    fn stitch(
        &self,
        blocks: &[Vec<OpId>],
        outs: &[BlockOut],
        ledger_floor: u64,
    ) -> Result<ParallelRun, SchedError> {
        let n = self.g.len();
        let k = self.resources.k();
        let mut schedule = HardSchedule::new(n);
        let mut finish: Vec<u64> = vec![0; n];
        let mut placed: Vec<bool> = vec![false; n];
        let mut unit_threads: Vec<Vec<OpId>> = vec![Vec::new(); k];
        let mut meta_order: Vec<OpId> = Vec::with_capacity(n);
        // Available time of each unit chain after the blocks stitched
        // so far.
        let mut chain_avail: Vec<u64> = vec![0; k];
        let mut diameter = 0u64;

        // Per-block scratch, reused.
        let mut local_of: Vec<u32> = vec![u32::MAX; n];
        let mut unit_of: Vec<(u32, u32)> = Vec::new(); // (chain, index on segment)
        let mut indeg: Vec<u32> = Vec::new();
        let mut queue: Vec<u32> = Vec::new();

        for (b, ops) in blocks.iter().enumerate() {
            let out = &outs[b];
            for (i, &v) in ops.iter().enumerate() {
                local_of[v.index()] = i as u32;
            }
            unit_of.clear();
            unit_of.resize(ops.len(), (u32::MAX, 0));
            for (c, chain) in out.unit_chains.iter().enumerate() {
                for (i, &v) in chain.iter().enumerate() {
                    unit_of[local_of[v.index()] as usize] = (c as u32, i as u32);
                }
            }
            // Kahn over the block's combined subgraph: intra-block
            // behavior edges + chain-successor edges.
            indeg.clear();
            indeg.resize(ops.len(), 0);
            for (i, &v) in ops.iter().enumerate() {
                let mut d = 0u32;
                for &p in self.g.preds(v) {
                    if local_of[p.index()] != u32::MAX {
                        d += 1;
                    }
                }
                let (c, ci) = unit_of[i];
                if c != u32::MAX && ci > 0 {
                    d += 1;
                }
                indeg[i] = d;
            }
            queue.clear();
            for (i, &d) in indeg.iter().enumerate() {
                if d == 0 {
                    queue.push(i as u32);
                }
            }
            let mut popped = 0usize;
            let mut head = 0usize;
            while head < queue.len() {
                let i = queue[head] as usize;
                head += 1;
                popped += 1;
                let v = ops[i];
                let mut start = 0u64;
                for &p in self.g.preds(v) {
                    // Cross-block predecessors are already placed
                    // (blocks are quotient-topologically numbered);
                    // intra-block ones were popped before us.
                    debug_assert!(placed[p.index()] || local_of[p.index()] != u32::MAX);
                    start = start.max(finish[p.index()]);
                }
                let (c, ci) = unit_of[i];
                if c != u32::MAX {
                    let chain = &outs[b].unit_chains[c as usize];
                    if ci == 0 {
                        start = start.max(chain_avail[c as usize]);
                    } else {
                        start = start.max(finish[chain[ci as usize - 1].index()]);
                    }
                }
                let f = start + self.g.delay(v);
                finish[v.index()] = f;
                placed[v.index()] = true;
                diameter = diameter.max(f);
                let unit = (c != u32::MAX).then_some(c as usize);
                schedule.assign(v, start, unit);
                meta_order.push(v);
                // Release intra-block behavior successors and the
                // chain successor.
                for &s in self.g.succs(v) {
                    let t = local_of[s.index()];
                    if t != u32::MAX {
                        indeg[t as usize] -= 1;
                        if indeg[t as usize] == 0 {
                            queue.push(t);
                        }
                    }
                }
                if c != u32::MAX {
                    let chain = &outs[b].unit_chains[c as usize];
                    if (ci as usize) + 1 < chain.len() {
                        let t = local_of[chain[ci as usize + 1].index()];
                        indeg[t as usize] -= 1;
                        if indeg[t as usize] == 0 {
                            queue.push(t);
                        }
                    }
                }
            }
            assert_eq!(popped, ops.len(), "block {b}: combined subgraph has a cycle");
            for (c, chain) in out.unit_chains.iter().enumerate() {
                if let Some(&last) = chain.last() {
                    chain_avail[c] = finish[last.index()];
                }
                unit_threads[c].extend_from_slice(chain);
            }
            for &v in ops {
                local_of[v.index()] = u32::MAX;
            }
        }

        let cp = hls_ir::algo::sink_distances(&self.g).into_iter().max().unwrap_or(0);
        let lower_bound = cp.max(ledger_floor);
        Ok(ParallelRun {
            schedule,
            diameter,
            lower_bound,
            unit_threads,
            meta_order,
            cut_edges: self.partition.cut_size(&self.g),
            block_diameters: outs.iter().map(|o| o.diameter).collect(),
        })
    }

    /// Materialises a stitched run back into a live
    /// [`ThreadedScheduler`]: replays the stitched placement through
    /// the engine's own `commit` (tail inserts, combined topological
    /// order), rebuilding the full incremental state so ECO refinement
    /// continues to work. The materialised state's diameter equals
    /// `run.diameter` (same threaded graph, same longest path).
    ///
    /// This rebuilds the whole-graph reachability index, so it costs
    /// what `ThreadedScheduler::new` costs — intended for moderate
    /// sizes and for the invariant/differential test layer, not for
    /// the million-op fast path.
    ///
    /// # Errors
    ///
    /// The errors of [`ThreadedScheduler::new`] and
    /// [`ThreadedScheduler::schedule`].
    pub fn materialize(&self, run: &ParallelRun) -> Result<ThreadedScheduler, SchedError> {
        let _span = hls_obs::obs_span!(ParallelMaterialize, "", self.g.len() as u64);
        let mut ts = ThreadedScheduler::new(self.g.clone(), self.resources.clone())?;
        let mut tails: Vec<Option<OpId>> = vec![None; self.resources.k()];
        for &v in &run.meta_order {
            match run.schedule.unit(v) {
                None => {
                    // Wire-class ops get their own singleton threads,
                    // exactly as in sequential scheduling.
                    ts.schedule(v)?;
                }
                Some(k) => {
                    ts.commit(Placement { thread: k, after: tails[k], cost: 0 }, v);
                    tails[k] = Some(v);
                }
            }
        }
        Ok(ts)
    }
}
