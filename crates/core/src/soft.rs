//! The soft-scheduling framework (Section 3 of the paper).
//!
//! An *online schedule* is a function `F : V_G × S_F → S_F` over
//! scheduling states that are themselves precedence graphs, subject to
//! (Definition 3):
//!
//! 1. **initial condition** — the empty graph is a state;
//! 2. **correctness condition** — the state order is consistent with the
//!    source order: `p ≺_G q → p ≺_S q` for scheduled `p, q`;
//! 3. **incremental condition** — scheduling never retracts an ordering
//!    and adds at most the new vertex.
//!
//! A scheduler is **hard** when every state is totally ordered and
//! **soft** otherwise. This module gives those definitions teeth: states
//! are exported as [`StateSnapshot`]s and each condition is a checkable
//! predicate, used extensively by the property-based test-suite.

use crate::SchedError;
use hls_ir::{algo, BitMatrix, OpId, PrecedenceGraph};

/// A scheduling state exported as a plain precedence graph
/// (Definition 6: the subgraph of the threaded graph spanned by
/// `V \ s \ t`).
///
/// Snapshots are a *verification* surface: [`StateSnapshot::order`]
/// materialises the state's dense transitive closure, which is fine at
/// test sizes but `Θ(|V|²)` bits. The scheduler itself answers its
/// hot-path reachability probes through the sub-quadratic chain-cover
/// index ([`hls_ir::ReachIndex`], `DESIGN.md` §5) and never builds
/// these matrices outside [`check_incremental`]-style oracles.
#[derive(Clone, Debug)]
pub struct StateSnapshot {
    /// The state as a precedence graph; vertex `i` corresponds to
    /// `ops[i]` in the original behavior.
    pub graph: PrecedenceGraph,
    /// Snapshot index → original operation. The vertex numbering is
    /// fixed at construction: [`StateSnapshot::index_of`] answers from
    /// a map precomputed by [`StateSnapshot::new`], so `ops` must not
    /// be reordered or extended afterwards (replacing `graph` edges,
    /// as the forgery tests do, is fine).
    pub ops: Vec<OpId>,
    /// Snapshot index → thread.
    pub threads: Vec<usize>,
    /// Original op index → snapshot index (`None` if unscheduled),
    /// precomputed so [`StateSnapshot::index_of`] is `O(1)` instead of a
    /// linear scan per lookup.
    index: Vec<Option<usize>>,
}

impl StateSnapshot {
    /// Builds a snapshot, precomputing the reverse op → index map.
    pub fn new(graph: PrecedenceGraph, ops: Vec<OpId>, threads: Vec<usize>) -> Self {
        let cap = ops.iter().map(|o| o.index() + 1).max().unwrap_or(0);
        let mut index = vec![None; cap];
        for (i, op) in ops.iter().enumerate() {
            index[op.index()] = Some(i);
        }
        StateSnapshot {
            graph,
            ops,
            threads,
            index,
        }
    }

    /// The snapshot index of an original operation, if scheduled.
    pub fn index_of(&self, v: OpId) -> Option<usize> {
        self.index.get(v.index()).copied().flatten()
    }

    /// The state's partial order `≺_S` as a strict reachability matrix
    /// over snapshot indices.
    pub fn order(&self) -> BitMatrix {
        algo::transitive_closure(&self.graph)
    }

    /// `true` if the scheduled set is *totally* ordered — i.e. this is
    /// the state of a hard scheduler.
    pub fn is_hard(&self) -> bool {
        let m = self.order();
        for i in 0..self.graph.len() {
            for j in (i + 1)..self.graph.len() {
                if !m.get(i, j) && !m.get(j, i) {
                    return false;
                }
            }
        }
        true
    }
}

/// The online-scheduler abstraction of Definition 2/3: a procedural
/// schedule feeds operations (the *meta schedule*) one at a time into an
/// implementation of this trait (the *online schedule*).
pub trait OnlineScheduler {
    /// Schedules one operation; must be a no-op if already scheduled.
    ///
    /// # Errors
    ///
    /// Implementation-specific ([`SchedError`]).
    fn schedule_op(&mut self, v: OpId) -> Result<(), SchedError>;

    /// `true` if `v` is in the current state.
    fn is_scheduled(&self, v: OpId) -> bool;

    /// Exports the current scheduling state.
    fn snapshot(&self) -> StateSnapshot;

    /// The diameter `‖S‖` of the current state.
    fn state_diameter(&self) -> u64;
}

impl OnlineScheduler for crate::ThreadedScheduler {
    fn schedule_op(&mut self, v: OpId) -> Result<(), SchedError> {
        self.schedule(v).map(|_| ())
    }

    fn is_scheduled(&self, v: OpId) -> bool {
        self.is_scheduled(v)
    }

    fn snapshot(&self) -> StateSnapshot {
        self.snapshot()
    }

    fn state_diameter(&self) -> u64 {
        self.diameter()
    }
}

/// Checks Definition 3's **correctness condition**: for every pair of
/// scheduled operations, `p ≺_G q` implies `p ≺_S q`.
///
/// # Errors
///
/// Returns a description of the first violated pair.
pub fn check_correctness(g: &PrecedenceGraph, snap: &StateSnapshot) -> Result<(), String> {
    let g_order = algo::transitive_closure(g);
    let s_order = snap.order();
    for (i, &p) in snap.ops.iter().enumerate() {
        for (j, &q) in snap.ops.iter().enumerate() {
            if i != j && g_order.get(p.index(), q.index()) && !s_order.get(i, j) {
                return Err(format!(
                    "correctness violated: {p} ≺_G {q} but not ordered in the state"
                ));
            }
        }
    }
    Ok(())
}

/// Checks Definition 3's **incremental condition** between two
/// consecutive states: every ordering of `prev` persists in `next`, and
/// the vertex set grows by at most one operation.
///
/// This is a small-`V` test oracle: it compares the two states' full
/// dense closures (`Θ(|V|²)` per step). The production engine never
/// pays that — its incremental guarantees are enforced structurally by
/// the commit rules and cross-checked against the chain-cover
/// reachability index ([`hls_ir::ReachIndex`], `DESIGN.md` §5) in
/// `ThreadedScheduler::check_invariants`.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn check_incremental(prev: &StateSnapshot, next: &StateSnapshot) -> Result<(), String> {
    if next.ops.len() < prev.ops.len() || next.ops.len() > prev.ops.len() + 1 {
        return Err(format!(
            "state grew from {} to {} vertices",
            prev.ops.len(),
            next.ops.len()
        ));
    }
    for op in &prev.ops {
        if !next.ops.contains(op) {
            return Err(format!("operation {op} vanished from the state"));
        }
    }
    let prev_order = prev.order();
    let next_order = next.order();
    for (i, &p) in prev.ops.iter().enumerate() {
        for (j, &q) in prev.ops.iter().enumerate() {
            if i != j && prev_order.get(i, j) {
                let ni = next.index_of(p).expect("checked above");
                let nj = next.index_of(q).expect("checked above");
                if !next_order.get(ni, nj) {
                    return Err(format!("ordering {p} ≺ {q} was retracted"));
                }
            }
        }
    }
    Ok(())
}

/// Checks Definition 4's **threadedness**: within every thread the
/// scheduled operations are totally ordered by the state.
///
/// # Errors
///
/// Returns a description of the first incomparable same-thread pair.
pub fn check_threaded(snap: &StateSnapshot) -> Result<(), String> {
    let order = snap.order();
    for i in 0..snap.ops.len() {
        for j in (i + 1)..snap.ops.len() {
            if snap.threads[i] == snap.threads[j] && !order.get(i, j) && !order.get(j, i) {
                return Err(format!(
                    "thread {} holds incomparable ops {} and {}",
                    snap.threads[i], snap.ops[i], snap.ops[j]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadedScheduler;
    use hls_ir::{bench_graphs, ResourceSet};

    #[test]
    fn initial_condition_snapshot_is_empty() {
        let f = bench_graphs::fig1();
        let ts = ThreadedScheduler::new(f.graph, ResourceSet::uniform(2)).unwrap();
        let snap = ts.snapshot();
        assert!(snap.graph.is_empty());
        assert!(snap.is_hard(), "the empty state is (vacuously) total");
    }

    #[test]
    fn correctness_holds_along_a_full_run() {
        let f = bench_graphs::fig1();
        let g = f.graph.clone();
        let mut ts = ThreadedScheduler::new(f.graph, ResourceSet::uniform(2)).unwrap();
        for v in f.v {
            ts.schedule(v).unwrap();
            check_correctness(&g, &ts.snapshot()).unwrap();
        }
    }

    #[test]
    fn incremental_condition_holds_step_by_step() {
        let f = bench_graphs::fig1();
        let mut ts = ThreadedScheduler::new(f.graph, ResourceSet::uniform(2)).unwrap();
        let mut prev = ts.snapshot();
        for v in f.v {
            ts.schedule(v).unwrap();
            let next = ts.snapshot();
            check_incremental(&prev, &next).unwrap();
            prev = next;
        }
    }

    #[test]
    fn threadedness_holds_and_state_is_soft() {
        let f = bench_graphs::fig1();
        let mut ts = ThreadedScheduler::new(f.graph, ResourceSet::uniform(2)).unwrap();
        ts.schedule_all(f.v).unwrap();
        let snap = ts.snapshot();
        check_threaded(&snap).unwrap();
        // With 2 threads over 7 ops the state keeps genuine parallelism:
        // it is partially but not totally ordered — *soft*, not hard.
        assert!(!snap.is_hard(), "threaded state must stay soft");
    }

    #[test]
    fn one_thread_degenerates_to_a_hard_scheduler() {
        // K = 1 serialises everything: the state is totally ordered, so
        // the threaded scheduler degenerates to a traditional scheduler.
        let f = bench_graphs::fig1();
        let mut ts = ThreadedScheduler::new(f.graph, ResourceSet::uniform(1)).unwrap();
        ts.schedule_all(f.v).unwrap();
        assert!(ts.snapshot().is_hard());
    }

    #[test]
    fn checkers_reject_forged_states() {
        let f = bench_graphs::fig1();
        let g = f.graph.clone();
        let mut ts = ThreadedScheduler::new(f.graph, ResourceSet::uniform(2)).unwrap();
        ts.schedule_all(f.v).unwrap();
        let mut snap = ts.snapshot();
        // Forge: drop all edges — correctness and threadedness break.
        snap.graph = {
            let mut empty = hls_ir::PrecedenceGraph::new();
            for i in 0..snap.ops.len() {
                let op = snap.ops[i];
                empty.add_op(g.kind(op), g.delay(op), g.label(op));
            }
            empty
        };
        assert!(check_correctness(&g, &snap).is_err());
        assert!(check_threaded(&snap).is_err());
    }

    #[test]
    fn incremental_checker_rejects_vanishing_ops() {
        let f = bench_graphs::fig1();
        let mut ts = ThreadedScheduler::new(f.graph, ResourceSet::uniform(2)).unwrap();
        ts.schedule(f.v[0]).unwrap();
        ts.schedule(f.v[1]).unwrap();
        let big = ts.snapshot();
        let f2 = bench_graphs::fig1();
        let ts2 = ThreadedScheduler::new(f2.graph, ResourceSet::uniform(2)).unwrap();
        let empty = ts2.snapshot();
        assert!(check_incremental(&big, &empty).is_err());
    }
}
