//! Adversarial coverage for `ThreadedScheduler::refine_graft`
//! (ISSUE 8, satellite 4): id divergence between the resubmitted graph
//! and the cached scheduler state.
//!
//! `refine_graft` trusts the caller's submitted-index map — `map[i]` is
//! the scheduler op standing for target index `i`. These tests pin the
//! contract at its edges: a resubmission that renumbers the whole base
//! graph (shuffled map), an empty delta, a delta op landing on every
//! partition boundary of a *parallel-materialized* state, malformed
//! maps, and budget expiry mid-graft.

use hls_ir::{generate, schedule, Budget, OpId, OpKind, PrecedenceGraph, ResourceSet};
use threaded_sched::{
    meta::MetaSchedule, parallel::ParallelConfig, ParallelScheduler, SchedError,
    ThreadedScheduler,
};

fn scheduled(g: &PrecedenceGraph, resources: &ResourceSet) -> ThreadedScheduler {
    let order = MetaSchedule::Topological.order(g, resources).unwrap();
    let mut ts = ThreadedScheduler::new(g.clone(), resources.clone()).unwrap();
    ts.schedule_all(order).unwrap();
    ts
}

fn identity_map(n: usize) -> Vec<OpId> {
    (0..n).map(OpId::from_index).collect()
}

/// Deterministic shuffle (splitmix64 + Fisher-Yates) — no rand crate.
fn shuffle(perm: &mut [usize], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..perm.len()).rev() {
        perm.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

#[test]
fn empty_delta_is_a_noop() {
    let resources = ResourceSet::classic(2, 2);
    let g = generate::stress_dag(41, 400);
    let mut ts = scheduled(&g, &resources);
    let before = ts.diameter();
    let mut map = identity_map(g.len());

    let added = ts.refine_graft(&g, &mut map, &Budget::NONE).unwrap();
    assert!(added.is_empty(), "an empty delta grafts nothing");
    assert_eq!(map.len(), g.len(), "an empty delta extends the map by nothing");
    assert_eq!(ts.diameter(), before, "an empty delta leaves the diameter alone");
    assert_eq!(ts.scheduled_count(), g.len());
    ts.check_invariants().unwrap();
}

/// A resubmission that renumbers the entire base graph: target index
/// `i` holds what the scheduler knows as op `perm[i]`. The graft must
/// land the delta on the same scheduler ops as the identity-numbered
/// resubmission — bit-identical diameters and predecessor sets.
#[test]
fn shuffled_submitted_index_map_matches_identity() {
    let resources = ResourceSet::classic(2, 2);
    let g = generate::stress_dag(42, 300);
    let n = g.len();

    let mut perm: Vec<usize> = (0..n).collect();
    shuffle(&mut perm, 0xD1CE);
    let mut pos = vec![0usize; n];
    for (i, &p) in perm.iter().enumerate() {
        pos[p] = i;
    }

    // The shuffled resubmission: base ops in `perm` order, base edges
    // re-expressed in the new numbering, then a delta bridging widely
    // separated base ops (in shuffled coordinates the delta's endpoint
    // indices are arbitrary, which is the point).
    let mut shuffled = PrecedenceGraph::new();
    for &p in &perm {
        let v = OpId::from_index(p);
        shuffled.add_op(g.kind(v), g.delay(v), g.label(v).to_string());
    }
    for u in g.op_ids() {
        for &v in g.succs(u) {
            shuffled
                .add_edge(OpId::from_index(pos[u.index()]), OpId::from_index(pos[v.index()]))
                .unwrap();
        }
    }
    // Identity resubmission of the same base, for the differential run.
    let mut identity = g.clone();

    // The delta, expressed against *scheduler* ids, then translated
    // into each resubmission's own numbering.
    let delta: Vec<(usize, usize)> = (0..24)
        .map(|i| {
            let a = (i * 7) % (n / 2);
            let b = n / 2 + (i * 13) % (n / 2);
            (a, b)
        })
        .collect();
    for (i, &(a, b)) in delta.iter().enumerate() {
        let ds = shuffled.add_op(OpKind::Add, 1, format!("d{i}"));
        shuffled.add_edge(OpId::from_index(pos[a]), ds).unwrap();
        shuffled.add_edge(ds, OpId::from_index(pos[b])).unwrap();
        let di = identity.add_op(OpKind::Add, 1, format!("d{i}"));
        identity.add_edge(OpId::from_index(a), di).unwrap();
        identity.add_edge(di, OpId::from_index(b)).unwrap();
    }

    let mut ts_shuf = scheduled(&g, &resources);
    let mut map_shuf: Vec<OpId> = perm.iter().map(|&p| OpId::from_index(p)).collect();
    let added_shuf = ts_shuf.refine_graft(&shuffled, &mut map_shuf, &Budget::NONE).unwrap();

    let mut ts_id = scheduled(&g, &resources);
    let mut map_id = identity_map(n);
    let added_id = ts_id.refine_graft(&identity, &mut map_id, &Budget::NONE).unwrap();

    assert_eq!(added_shuf.len(), delta.len());
    assert_eq!(added_shuf, added_id, "same delta, same base state, same new ids");
    assert_eq!(
        ts_shuf.diameter(),
        ts_id.diameter(),
        "the graft is invariant to how the resubmission renumbers the base"
    );
    for (i, &(a, b)) in delta.iter().enumerate() {
        let d = added_shuf[i];
        assert!(
            ts_shuf.graph().preds(d).contains(&OpId::from_index(a)),
            "delta op {i} kept its scheduler-side predecessor"
        );
        assert!(ts_shuf.graph().succs(d).contains(&OpId::from_index(b)));
    }
    ts_shuf.check_invariants().unwrap();
    let hard = ts_shuf.extract_hard();
    schedule::validate(ts_shuf.graph(), &resources, &hard).unwrap();
    // The extended map keeps working: graft a second, empty delta.
    let again = ts_shuf.refine_graft(&shuffled, &mut map_shuf, &Budget::NONE).unwrap();
    assert!(again.is_empty());
}

/// A delta op on every partition boundary of a parallel-materialized
/// state: for each ordered block pair with a cut edge between them,
/// one representative seam edge gets a grafted op. The graft path must
/// absorb work landing exactly on the stitch seams.
#[test]
fn delta_on_every_partition_boundary() {
    let resources = ResourceSet::classic(2, 2);
    let g = generate::stress_dag(43, 1200);
    let cfg = ParallelConfig { parts: 8, sequential_cutoff: 0, ..ParallelConfig::default() };
    let ps = ParallelScheduler::new(g.clone(), resources.clone(), cfg).unwrap();
    let run = ps.run().unwrap();
    let part = ps.partition();
    let mut cut: Vec<(hls_ir::OpId, hls_ir::OpId)> = Vec::new();
    let mut covered = std::collections::BTreeSet::new();
    for (u, v) in part.cut_edges(&g) {
        if covered.insert((part.part_of(u), part.part_of(v))) {
            cut.push((u, v));
        }
    }
    assert!(!cut.is_empty());

    let mut target = g.clone();
    for (i, &(u, v)) in cut.iter().enumerate() {
        let d = target.add_op(OpKind::Add, 1, format!("seam{i}"));
        target.add_edge(u, d).unwrap();
        target.add_edge(d, v).unwrap();
    }

    let mut ts = ps.materialize(&run).unwrap();
    let before = ts.diameter();
    let mut map = identity_map(g.len());
    let added = ts.refine_graft(&target, &mut map, &Budget::NONE).unwrap();
    assert_eq!(added.len(), cut.len(), "one grafted op per cut edge");
    assert_eq!(map.len(), target.len());
    assert!(ts.diameter() >= before, "grafting only adds work");
    ts.check_invariants().unwrap();
    let hard = ts.extract_hard();
    schedule::validate(ts.graph(), &resources, &hard).unwrap();
}

#[test]
fn malformed_resubmissions_are_rejected() {
    let resources = ResourceSet::classic(2, 2);
    let g = generate::stress_dag(44, 120);
    let mut ts = scheduled(&g, &resources);

    // Map longer than the target: the resubmission lost ops.
    let mut long_map = identity_map(g.len() + 5);
    assert!(matches!(
        ts.refine_graft(&g, &mut long_map, &Budget::NONE),
        Err(SchedError::NotAnExtension)
    ));

    // A loop-carried edge in the resubmission: grafting is DAG-only.
    let mut looped = g.clone();
    let d = looped.add_op(OpKind::Add, 1, "acc");
    looped.add_edge(OpId::from_index(0), d).unwrap();
    looped.add_dep_edge(d, d, 1).unwrap();
    let mut map = identity_map(g.len());
    assert!(matches!(
        ts.refine_graft(&looped, &mut map, &Budget::NONE),
        Err(SchedError::NotAnExtension)
    ));
    assert_eq!(map.len(), g.len(), "a rejected graft leaves the map alone");
    ts.check_invariants().unwrap();
}

/// A translation map that aliases one scheduler op under two submitted
/// indices used to be accepted silently: every delta edge naming
/// either index landed on the same op (last-write-wins), and the other
/// base op lost its delta cone with no diagnostic. The graft now
/// rejects non-injective maps up front as [`SchedError::Malformed`],
/// before touching the state.
#[test]
fn duplicate_map_entries_are_rejected_as_malformed() {
    let resources = ResourceSet::classic(2, 2);
    let g = generate::stress_dag(46, 150);
    let mut ts = scheduled(&g, &resources);
    let before = ts.diameter();

    let mut target = g.clone();
    let d = target.add_op(OpKind::Add, 1, "d0");
    target.add_edge(OpId::from_index(3), d).unwrap();

    // Submitted index 5 claims the scheduler op index 3 already stands
    // for: two submitted ops, one scheduled op.
    let mut map = identity_map(g.len());
    map[5] = map[3];
    let err = ts.refine_graft(&target, &mut map, &Budget::NONE).unwrap_err();
    assert!(matches!(err, SchedError::Malformed(_)), "got {err}");
    assert_eq!(map.len(), g.len(), "a rejected graft leaves the map alone");
    assert_eq!(ts.diameter(), before, "a rejected graft leaves the state alone");
    assert_eq!(ts.scheduled_count(), g.len());
    ts.check_invariants().unwrap();

    // An entry outside the state's id space is the same class of
    // caller bug, caught by the same validation.
    let mut map2 = identity_map(g.len());
    map2[0] = OpId::from_index(g.len() + 7);
    assert!(matches!(
        ts.refine_graft(&target, &mut map2, &Budget::NONE),
        Err(SchedError::Malformed(_))
    ));

    // The honest map over the same state still grafts.
    let mut map3 = identity_map(g.len());
    let added = ts.refine_graft(&target, &mut map3, &Budget::NONE).unwrap();
    assert_eq!(added.len(), 1);
    ts.check_invariants().unwrap();
    let hard = ts.extract_hard();
    schedule::validate(ts.graph(), &resources, &hard).unwrap();
}

/// Budget expiry mid-graft: the error is `Timeout`, the state keeps
/// its invariants (each grafted op is atomic), and the map records
/// exactly the ops that made it in — so the caller can resume.
#[test]
fn budget_expiry_mid_graft_leaves_a_resumable_state() {
    let resources = ResourceSet::classic(2, 2);
    let g = generate::stress_dag(45, 200);
    let n = g.len();
    let mut target = g.clone();
    for i in 0..40 {
        let d = target.add_op(OpKind::Add, 1, format!("d{i}"));
        target.add_edge(OpId::from_index(i * 3 % n), d).unwrap();
    }

    let mut ts = scheduled(&g, &resources);
    let mut map = identity_map(n);
    let err = ts.refine_graft(&target, &mut map, &Budget::steps(10)).unwrap_err();
    assert!(matches!(err, SchedError::Timeout));
    assert!(map.len() > n && map.len() < target.len(), "a partial graft landed");
    ts.check_invariants().unwrap();

    // Resume with the same (extended) map and no budget: completes.
    let added = ts.refine_graft(&target, &mut map, &Budget::NONE).unwrap();
    assert_eq!(map.len(), target.len());
    assert_eq!(ts.scheduled_count(), target.len());
    assert!(!added.is_empty());
    ts.check_invariants().unwrap();
    let hard = ts.extract_hard();
    schedule::validate(ts.graph(), &resources, &hard).unwrap();
}
