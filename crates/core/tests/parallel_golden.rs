//! The golden-equivalence and determinism test layer for
//! partition-parallel scheduling (ISSUE 8, tentpole + satellite 2).
//!
//! Three contracts are pinned:
//!
//! 1. **Golden equivalence.** On every graph at or below the
//!    sequential cutoff (all paper kernels and stress DAGs up to 5k
//!    ops), `ParallelScheduler` is *bit-identical* to the sequential
//!    `ThreadedScheduler` under the same meta order — same diameter,
//!    same hard schedule, valid by `hls_ir::schedule::validate`.
//! 2. **Determinism.** With the partition path forced
//!    (`sequential_cutoff: 0`), results are a pure function of
//!    (graph, resources, config): bit-identical across 1, 2 and 8
//!    worker threads, and across repeated runs. Across partition
//!    counts the default configuration is bit-identical (the cutoff
//!    path does not depend on the partition), and forced-partition
//!    diameters stay within the pinned quality band of each other.
//! 3. **Stitch validity.** The forced partition path always produces a
//!    valid schedule; its diameter never beats the certified lower
//!    bound and stays within the pinned band of the sequential
//!    diameter; materialising the stitched state back into a live
//!    `ThreadedScheduler` passes the full `check_invariants`
//!    cross-validation and reproduces the stitched diameter exactly.

use hls_ir::{bench_graphs, generate, schedule, OpKind, PrecedenceGraph, ResourceSet};
use threaded_sched::{
    meta::MetaSchedule, parallel::ParallelConfig, ParallelScheduler, ThreadedScheduler,
};

/// The small-graph golden suite: the four paper kernels, the Figure 1
/// example, a wire-delay-bearing DFG, and stress DAGs up to 5k ops.
fn golden_suite() -> Vec<(String, PrecedenceGraph)> {
    let mut suite: Vec<(String, PrecedenceGraph)> = bench_graphs::all()
        .into_iter()
        .map(|(name, g)| (name.to_string(), g))
        .collect();
    suite.push(("FIG1".to_string(), bench_graphs::fig1().graph));
    suite.push(("WIRE".to_string(), wire_dag()));
    for (seed, ops) in [(1u64, 200usize), (2, 800), (3, 2000), (4, 5000)] {
        suite.push((format!("STRESS-{ops}"), generate::stress_dag(seed, ops)));
    }
    suite
}

/// A DFG with wire-class operations in the behavior itself (moves and
/// wire delays between arithmetic stages), covering the unit-less path
/// of the stitch.
fn wire_dag() -> PrecedenceGraph {
    let mut g = PrecedenceGraph::new();
    let mut prev: Option<hls_ir::OpId> = None;
    for i in 0..40 {
        let a = g.add_op(OpKind::Mul, 2, format!("m{i}"));
        let w = g.add_op(OpKind::WireDelay, 1, format!("w{i}"));
        let b = g.add_op(OpKind::Add, 1, format!("a{i}"));
        g.add_edge(a, w).unwrap();
        g.add_edge(w, b).unwrap();
        if let Some(p) = prev {
            g.add_edge(p, a).unwrap();
        }
        prev = (i % 3 != 0).then_some(b);
    }
    g
}

/// Worker-thread count for the forced-partition runs. The CI
/// parallel-equivalence job runs this suite under
/// `PARALLEL_GOLDEN_WORKERS=2` and `=8`; determinism across worker
/// counts means both runs must pass identically.
fn workers() -> usize {
    std::env::var("PARALLEL_GOLDEN_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

fn sequential_diameter(g: &PrecedenceGraph, resources: &ResourceSet) -> u64 {
    let order = MetaSchedule::Topological.order(g, resources).unwrap();
    let mut ts = ThreadedScheduler::new(g.clone(), resources.clone()).unwrap();
    ts.schedule_all(order).unwrap();
    ts.diameter()
}

/// The pinned quality band of the raw stitch: on the golden suite the
/// stitched diameter stays within 5% of sequential plus a seam
/// allowance of two cycles per forced partition (an 11-op kernel cut
/// into 8 blocks is almost all seam; each extra boundary costs at most
/// a couple of cycles). Measured worst cases: +3 at 2 parts, +8 at 4,
/// +12 at 8 — the relative term takes over for anything above ~250
/// ops.
fn quality_bound(seq: u64, parts: usize) -> u64 {
    seq + (seq / 20).max(2 * parts as u64 + 2)
}

#[test]
fn golden_equivalence_below_cutoff() {
    let resources = ResourceSet::classic(2, 2);
    for (name, g) in golden_suite() {
        assert!(g.len() <= 5000, "{name}: suite graphs stay at or below 5k ops");
        let order = MetaSchedule::Topological.order(&g, &resources).unwrap();
        let mut ts = ThreadedScheduler::new(g.clone(), resources.clone()).unwrap();
        ts.schedule_all(order).unwrap();
        let seq_hard = ts.extract_hard();

        let ps =
            ParallelScheduler::new(g.clone(), resources.clone(), ParallelConfig::default())
                .unwrap();
        let run = ps.run().unwrap();
        assert_eq!(run.diameter, ts.diameter(), "{name}: diameter diverged");
        schedule::validate(&g, &resources, &run.schedule)
            .unwrap_or_else(|e| panic!("{name}: invalid parallel schedule: {e}"));
        for v in g.op_ids() {
            assert_eq!(run.schedule.start(v), seq_hard.start(v), "{name}: start of {v}");
            assert_eq!(run.schedule.unit(v), seq_hard.unit(v), "{name}: unit of {v}");
        }
    }
}

/// The `sequential_cutoff` boundary, pinned at the default cutoff
/// itself (ISSUE 9, satellite: the dispatch at *exactly* the cutoff).
/// 8191 and 8192 ops take the sequential path inside the parallel
/// engine — bit-identical to a plain `ThreadedScheduler` under the
/// same meta order, `== cutoff` included (the contract is `len >
/// cutoff` engages partitioning, so the boundary value itself is
/// sequential). 8193 ops must actually partition, produce a valid
/// schedule, and stay deterministic across repeated runs.
#[test]
fn sequential_cutoff_boundary_8191_8192_8193() {
    let resources = ResourceSet::classic(2, 2);
    let cutoff = ParallelConfig::default().sequential_cutoff;
    assert_eq!(cutoff, 8192, "the default cutoff this test pins moved — update the sizes");

    for ops in [cutoff - 1, cutoff] {
        let g = generate::layered_dag(0xC0FF ^ ops as u64, &generate::LayeredConfig {
            ops,
            width: 24,
            ..generate::LayeredConfig::default()
        });
        let order = MetaSchedule::Topological.order(&g, &resources).unwrap();
        let mut ts = ThreadedScheduler::new(g.clone(), resources.clone()).unwrap();
        ts.schedule_all(order).unwrap();
        let seq_hard = ts.extract_hard();

        let ps = ParallelScheduler::new(g.clone(), resources.clone(), ParallelConfig::default())
            .unwrap();
        let run = ps.run().unwrap();
        assert!(
            run.block_diameters.is_empty() && run.cut_edges == 0,
            "{ops} ops: at or below the cutoff the partition path must not engage"
        );
        assert_eq!(run.diameter, ts.diameter(), "{ops} ops: diameter diverged");
        for v in g.op_ids() {
            assert_eq!(run.schedule.start(v), seq_hard.start(v), "{ops} ops: start of {v}");
            assert_eq!(run.schedule.unit(v), seq_hard.unit(v), "{ops} ops: unit of {v}");
        }
    }

    // One past the cutoff: the partition path engages for real.
    let ops = cutoff + 1;
    let g = generate::layered_dag(0xC0FF ^ ops as u64, &generate::LayeredConfig {
        ops,
        width: 24,
        ..generate::LayeredConfig::default()
    });
    let cfg = ParallelConfig { workers: workers(), ..ParallelConfig::default() };
    let ps = ParallelScheduler::new(g.clone(), resources.clone(), cfg.clone()).unwrap();
    let run = ps.run().unwrap();
    assert!(
        !run.block_diameters.is_empty(),
        "{ops} ops: one past the cutoff must partition"
    );
    schedule::validate(&g, &resources, &run.schedule).unwrap();
    let again = ParallelScheduler::new(g.clone(), resources.clone(), cfg)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(run.diameter, again.diameter, "{ops} ops: repeated runs agree");
    for v in g.op_ids() {
        assert_eq!(run.schedule.start(v), again.schedule.start(v));
        assert_eq!(run.schedule.unit(v), again.schedule.unit(v));
    }
}

#[test]
fn default_config_is_partition_count_invariant_below_cutoff() {
    let resources = ResourceSet::classic(2, 2);
    let g = generate::stress_dag(7, 1500);
    let baseline = ParallelScheduler::new(g.clone(), resources.clone(), ParallelConfig::default())
        .unwrap()
        .run()
        .unwrap();
    for parts in [2usize, 4, 8, 16] {
        let cfg = ParallelConfig { parts, ..ParallelConfig::default() };
        let run = ParallelScheduler::new(g.clone(), resources.clone(), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(run.diameter, baseline.diameter);
        for v in g.op_ids() {
            assert_eq!(run.schedule.start(v), baseline.schedule.start(v));
            assert_eq!(run.schedule.unit(v), baseline.schedule.unit(v));
        }
    }
}

#[test]
fn forced_stitch_is_valid_bounded_and_materializable() {
    let resources = ResourceSet::classic(2, 2);
    for (name, g) in golden_suite() {
        let seq = sequential_diameter(&g, &resources);
        for parts in [2usize, 4, 8] {
            let cfg = ParallelConfig {
                parts,
                workers: workers(),
                sequential_cutoff: 0,
                ..ParallelConfig::default()
            };
            let ps = ParallelScheduler::new(g.clone(), resources.clone(), cfg).unwrap();
            let run = ps.run().unwrap();
            schedule::validate(&g, &resources, &run.schedule)
                .unwrap_or_else(|e| panic!("{name}/{parts}: invalid stitched schedule: {e}"));
            assert!(
                run.lower_bound <= run.diameter,
                "{name}/{parts}: certified bound {} above stitched diameter {}",
                run.lower_bound,
                run.diameter
            );
            assert!(
                run.lower_bound <= seq,
                "{name}/{parts}: certified bound {} above sequential diameter {seq}",
                run.lower_bound
            );
            assert!(
                run.diameter <= quality_bound(seq, parts),
                "{name}/{parts}: stitched diameter {} outside the quality band of \
                 sequential {seq}",
                run.diameter
            );
            assert_eq!(run.schedule.length(&g), run.diameter, "{name}/{parts}: length");

            // Materialisation rebuilds a live engine state holding the
            // stitched threading: full invariant cross-validation, and
            // the engine must agree on the diameter.
            let ts = ps.materialize(&run).unwrap();
            ts.check_invariants()
                .unwrap_or_else(|e| panic!("{name}/{parts}: stitched state invariants: {e}"));
            assert_eq!(ts.diameter(), run.diameter, "{name}/{parts}: materialized diameter");
            assert_eq!(ts.scheduled_count(), g.len(), "{name}/{parts}: all ops in state");
        }
    }
}

#[test]
fn forced_stitch_is_bit_identical_across_worker_counts() {
    let resources = ResourceSet::classic(2, 2);
    for (seed, ops) in [(11u64, 900usize), (12, 2500)] {
        let g = generate::stress_dag(seed, ops);
        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&workers| {
                let cfg = ParallelConfig {
                    workers,
                    parts: 8,
                    sequential_cutoff: 0,
                    ..ParallelConfig::default()
                };
                ParallelScheduler::new(g.clone(), resources.clone(), cfg)
                    .unwrap()
                    .run()
                    .unwrap()
            })
            .collect();
        for run in &runs[1..] {
            assert_eq!(run.diameter, runs[0].diameter);
            assert_eq!(run.meta_order, runs[0].meta_order);
            assert_eq!(run.unit_threads, runs[0].unit_threads);
            for v in g.op_ids() {
                assert_eq!(run.schedule.start(v), runs[0].schedule.start(v));
                assert_eq!(run.schedule.unit(v), runs[0].schedule.unit(v));
            }
        }
    }
}

#[test]
fn forced_stitch_diameters_stable_across_partition_counts() {
    let resources = ResourceSet::classic(2, 2);
    let g = generate::stress_dag(21, 3000);
    let seq = sequential_diameter(&g, &resources);
    for parts in [2usize, 4, 8, 16, 32] {
        let cfg = ParallelConfig {
            parts,
            workers: workers(),
            sequential_cutoff: 0,
            ..ParallelConfig::default()
        };
        let run = ParallelScheduler::new(g.clone(), resources.clone(), cfg)
            .unwrap()
            .run()
            .unwrap();
        schedule::validate(&g, &resources, &run.schedule).unwrap();
        assert!(
            run.diameter <= quality_bound(seq, parts),
            "parts={parts}: diameter {} vs sequential {seq}",
            run.diameter
        );
    }
}

#[test]
fn stitched_schedule_invariant_fuzzing() {
    // Randomised sizes, partition counts, worker counts and resource
    // allocations; every stitched schedule must be valid, every
    // materialised state must pass the dense-closure invariant check.
    for case in 0..24u64 {
        let ops = 150 + (case as usize * 191) % 1800;
        let g = generate::stress_dag(0x9_0000 + case, ops);
        let resources = match case % 3 {
            0 => ResourceSet::classic(1, 1),
            1 => ResourceSet::classic(2, 2),
            _ => ResourceSet::classic(3, 2),
        };
        let cfg = ParallelConfig {
            workers: 1 + (case as usize % 4),
            parts: [2, 3, 8, 13][case as usize % 4],
            sequential_cutoff: 0,
            ..ParallelConfig::default()
        };
        let ps = ParallelScheduler::new(g.clone(), resources.clone(), cfg).unwrap();
        let run = ps.run().unwrap();
        schedule::validate(&g, &resources, &run.schedule)
            .unwrap_or_else(|e| panic!("case {case}: invalid schedule: {e}"));
        assert!(run.lower_bound <= run.diameter, "case {case}: bound above diameter");
        let ts = ps.materialize(&run).unwrap();
        ts.check_invariants().unwrap_or_else(|e| panic!("case {case}: invariants: {e}"));
        assert_eq!(ts.diameter(), run.diameter, "case {case}: materialized diameter");
    }
}

#[test]
fn materialized_stitch_supports_eco_refinement() {
    // The payoff of materialisation: a partition-parallel result is a
    // first-class engine state — wire-delay splices on *cut edges* (the
    // partition seams) are absorbed by the ordinary ECO path.
    let resources = ResourceSet::classic(2, 2);
    let g = generate::stress_dag(31, 1200);
    let cfg = ParallelConfig { parts: 8, sequential_cutoff: 0, ..ParallelConfig::default() };
    let ps = ParallelScheduler::new(g.clone(), resources.clone(), cfg).unwrap();
    let run = ps.run().unwrap();
    let cut = ps.partition().cut_edges(&g);
    assert!(!cut.is_empty(), "an 8-way partition of 1200 ops must cut something");
    let mut ts = ps.materialize(&run).unwrap();
    for &(u, v) in cut.iter().take(12) {
        ts.refine_splice(u, v, [(OpKind::WireDelay, 1, "seam-wire".to_string())])
            .unwrap();
    }
    ts.check_invariants().unwrap();
    let hard = ts.extract_hard();
    schedule::validate(ts.graph(), &resources, &hard).unwrap();
}
