//! Golden equivalence: the optimized [`ThreadedScheduler`] must behave
//! *bit-identically* to the frozen seed implementation
//! ([`ReferenceScheduler`]) — the incremental engine is a pure
//! performance refactor (see `DESIGN.md` §4).
//!
//! Identical means: the same `Placement` (thread, after, cost) for every
//! operation of every meta order, the same per-thread chains, the same
//! diameter trajectory, and the same final `extract_hard()` schedule.
//! The suite drives both schedulers in lockstep over seeded random
//! graphs — including a ≥1000-op workload — under topological,
//! depth-first, path-based, list-based and non-topological random meta
//! orders, plus wire-delay refinement, and fuzzes `check_invariants()`
//! per commit on smaller cases (sampled every k-th commit above a size
//! threshold — the checker's from-scratch recompute is quadratic).

use hls_ir::{generate, DelayModel, OpId, OpKind, PrecedenceGraph, ResourceSet};
use proptest::prelude::*;
use threaded_sched::{meta::MetaSchedule, ReferenceScheduler, ThreadedScheduler};

/// Drives both schedulers through `order`, asserting lockstep placement
/// equality, and compares the final state observables.
fn assert_equivalent_run(g: &PrecedenceGraph, r: &ResourceSet, order: &[OpId], tag: &str) {
    let mut fast = ThreadedScheduler::new(g.clone(), r.clone()).unwrap();
    let mut gold = ReferenceScheduler::new(g.clone(), r.clone()).unwrap();
    for (step, &v) in order.iter().enumerate() {
        let pf = fast.schedule(v).unwrap();
        let pg = gold.schedule(v).unwrap();
        assert_eq!(
            pf, pg,
            "[{tag}] placement diverged at step {step} ({v}): fast {pf:?} vs golden {pg:?}"
        );
        assert_eq!(fast.diameter(), gold.diameter(), "[{tag}] diameter at {v}");
    }
    for k in 0..r.k() {
        assert_eq!(fast.chain(k), gold.chain(k), "[{tag}] chain {k}");
    }
    assert_eq!(
        fast.extract_hard(),
        gold.extract_hard(),
        "[{tag}] extracted hard schedules diverged"
    );
    fast.check_invariants().unwrap();
}

fn layered(seed: u64, ops: usize, width: usize, edge_prob: f64) -> PrecedenceGraph {
    let cfg = generate::LayeredConfig {
        ops,
        width,
        edge_prob,
        mul_ratio: 0.35,
        delays: DelayModel::classic(),
    };
    generate::layered_dag(seed, &cfg)
}

#[test]
fn golden_equivalence_on_1k_op_random_graphs() {
    // The headline case of the acceptance criteria: ≥1000 operations,
    // fixed seeds, several meta orders including a non-topological one.
    let r = ResourceSet::classic(2, 2);
    for seed in [1u64, 0xC0FFEE, 42] {
        let g = layered(seed, 1024, 32, 0.12);
        for meta in [
            MetaSchedule::Topological,
            MetaSchedule::Dfs,
            MetaSchedule::Random(seed ^ 0x5eed),
        ] {
            let order = meta.order(&g, &r).unwrap();
            assert_equivalent_run(&g, &r, &order, &format!("1k/{seed}/{}", meta.name()));
        }
    }
}

#[test]
fn golden_equivalence_across_shapes_and_resource_mixes() {
    let shapes: Vec<(PrecedenceGraph, &str)> = vec![
        (layered(7, 96, 6, 0.4), "narrow-deep"),
        (layered(9, 120, 40, 0.3), "wide-shallow"),
        (
            generate::random_dag(11, 64, 0.15, &DelayModel::classic()),
            "unstructured",
        ),
        (
            generate::expression_tree(5, &DelayModel::classic()),
            "expression-tree",
        ),
        (
            generate::independent_chains(6, 12, &DelayModel::classic()),
            "independent-chains",
        ),
    ];
    for (g, name) in shapes {
        for (alus, muls) in [(1, 1), (2, 2), (3, 1)] {
            let r = ResourceSet::classic(alus, muls);
            for meta in MetaSchedule::PAPER {
                let order = meta.order(&g, &r).unwrap();
                assert_equivalent_run(&g, &r, &order, &format!("{name}/{alus}+{muls}"));
            }
        }
    }
}

#[test]
fn golden_equivalence_under_wire_delay_refinement() {
    // Wire-delay splices grow the behavior and the thread count; both
    // engines must track each other through refinement too.
    let r = ResourceSet::classic(2, 1);
    let g = layered(5, 64, 8, 0.35);
    let order = MetaSchedule::Topological.order(&g, &r).unwrap();
    let mut fast = ThreadedScheduler::new(g.clone(), r.clone()).unwrap();
    let mut gold = ReferenceScheduler::new(g, r.clone()).unwrap();
    fast.schedule_all(order.iter().copied()).unwrap();
    gold.schedule_all(order.iter().copied()).unwrap();
    // Splice wire delays onto a handful of existing edges.
    let edges: Vec<(OpId, OpId)> = fast.graph().edges().take(5).collect();
    for (i, (from, to)) in edges.into_iter().enumerate() {
        let chain = [(OpKind::WireDelay, 1 + (i as u64 % 2), format!("wd{i}"))];
        let a = fast.refine_splice(from, to, chain.clone()).unwrap();
        let b = gold.refine_splice(from, to, chain).unwrap();
        assert_eq!(a, b, "splice {i} inserted different ids");
        assert_eq!(fast.diameter(), gold.diameter(), "diameter after splice {i}");
        fast.check_invariants().unwrap();
    }
    for k in 0..r.k() {
        assert_eq!(fast.chain(k), gold.chain(k), "chain {k} after refinement");
    }
    assert_eq!(fast.extract_hard(), gold.extract_hard());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fuzzed lockstep equivalence with `check_invariants()` after every
    /// single commit — the incremental labels, reach vectors and gap
    /// positions must match a from-scratch recomputation at all times.
    #[test]
    fn fuzzed_lockstep_with_invariants_each_commit(
        seed in 0u64..10_000,
        ops in 8usize..72,
        width in 2usize..12,
        alus in 1usize..4,
        muls in 1usize..3,
        meta_idx in 0usize..6,
    ) {
        let g = layered(seed, ops, width, 0.3);
        let r = ResourceSet::classic(alus, muls);
        let meta = match meta_idx {
            0 => MetaSchedule::Dfs,
            1 => MetaSchedule::Topological,
            2 => MetaSchedule::PathBased,
            3 => MetaSchedule::ListBased,
            _ => MetaSchedule::Random(seed),
        };
        let order = meta.order(&g, &r).unwrap();
        let mut fast = ThreadedScheduler::new(g.clone(), r.clone()).unwrap();
        let mut gold = ReferenceScheduler::new(g, r).unwrap();
        // `check_invariants()` recomputes labels and the reachability
        // oracle from scratch (`O(|V|²·K)`); above a size threshold,
        // sample every k-th commit (plus the final state) so the fuzz
        // wall time stays flat as graphs grow.
        let check_every = if ops > 32 { 8 } else { 1 };
        for (step, &v) in order.iter().enumerate() {
            let pf = fast.schedule(v).unwrap();
            let pg = gold.schedule(v).unwrap();
            prop_assert_eq!(pf, pg, "placement diverged at {}", v);
            if step % check_every == 0 || step + 1 == order.len() {
                if let Err(e) = fast.check_invariants() {
                    return Err(TestCaseError::fail(format!("invariants after {v}: {e}")));
                }
            }
        }
        prop_assert_eq!(fast.extract_hard(), gold.extract_hard());
    }
}
