//! The six state-update rules of the paper's Figure 2, one test each.
//!
//! For a new vertex `v` committed into thread `k`:
//!
//! * (a) a predecessor's existing edge into `k` lands *before* `v` —
//!   state untouched;
//! * (b) a predecessor has no edge into `k` — edge `p → v` added;
//! * (c) a predecessor's edge lands *after* `v` — retargeted to `v`;
//! * (d) a successor's existing edge from `k` leaves *after* `v` —
//!   state untouched;
//! * (e) a successor has no edge from `k` — edge `v → q` added;
//! * (f) a successor's edge leaves *before* `v` — retargeted from `v`.

use hls_ir::{OpId, OpKind, PrecedenceGraph, ResourceSet};
use threaded_sched::{Placement, ThreadedScheduler};

fn graph(n: usize, edges: &[(usize, usize)]) -> (PrecedenceGraph, Vec<OpId>) {
    let mut g = PrecedenceGraph::new();
    let ids: Vec<OpId> = (0..n)
        .map(|i| g.add_op(OpKind::Add, 1, format!("n{i}")))
        .collect();
    for &(a, b) in edges {
        g.add_edge(ids[a], ids[b]).unwrap();
    }
    (g, ids)
}

fn commit_into(ts: &mut ThreadedScheduler, op: OpId, thread: usize, after: Option<OpId>) {
    let p = ts
        .feasible_placements(op)
        .unwrap()
        .into_iter()
        .find(|p| p.thread == thread && p.after == after)
        .unwrap_or_else(|| panic!("position (thread {thread}, after {after:?}) infeasible"));
    ts.commit(Placement { ..p }, op);
    ts.check_invariants().unwrap();
}

/// Direct state edge between two scheduled ops.
fn state_edge(ts: &ThreadedScheduler, a: OpId, b: OpId) -> bool {
    let snap = ts.snapshot();
    let ia = snap.index_of(a).unwrap();
    let ib = snap.index_of(b).unwrap();
    snap.graph
        .has_edge(OpId::from_index(ia), OpId::from_index(ib))
}

/// Transitive state order between two scheduled ops.
fn state_before(ts: &ThreadedScheduler, a: OpId, b: OpId) -> bool {
    let snap = ts.snapshot();
    let ia = snap.index_of(a).unwrap();
    let ib = snap.index_of(b).unwrap();
    snap.order().get(ia, ib)
}

#[test]
fn rule_a_earlier_target_leaves_state_untouched() {
    // p -> q1, p -> v, q1 -> v; q1 sits in thread 0 before v.
    let (g, ids) = graph(3, &[(0, 1), (0, 2), (1, 2)]);
    let (p, q1, v) = (ids[0], ids[1], ids[2]);
    let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(2)).unwrap();
    commit_into(&mut ts, p, 1, None);
    commit_into(&mut ts, q1, 0, None); // p -> q1 cross edge appears
    assert!(state_edge(&ts, p, q1));
    commit_into(&mut ts, v, 0, Some(q1)); // after q1: rule (a) for p
    assert!(state_edge(&ts, p, q1), "edge p->q1 must survive");
    assert!(!state_edge(&ts, p, v), "no direct p->v; implied via q1");
    assert!(state_before(&ts, p, v));
}

#[test]
fn rule_b_missing_edge_is_added() {
    // p -> v across threads.
    let (g, ids) = graph(2, &[(0, 1)]);
    let (p, v) = (ids[0], ids[1]);
    let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(2)).unwrap();
    commit_into(&mut ts, p, 1, None);
    commit_into(&mut ts, v, 0, None);
    assert!(state_edge(&ts, p, v), "rule (b): edge p->v added");
}

#[test]
fn rule_c_overshooting_edge_is_retargeted() {
    // p -> q2 and p -> v; v inserted *before* q2 in thread 0.
    let (g, ids) = graph(3, &[(0, 1), (0, 2)]);
    let (p, q2, v) = (ids[0], ids[1], ids[2]);
    let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(2)).unwrap();
    commit_into(&mut ts, p, 1, None);
    commit_into(&mut ts, q2, 0, None);
    assert!(state_edge(&ts, p, q2));
    commit_into(&mut ts, v, 0, None); // head of thread 0, before q2
    assert!(state_edge(&ts, p, v), "rule (c): edge retargeted to v");
    assert!(!state_edge(&ts, p, q2), "old overshooting edge removed");
    assert!(state_before(&ts, p, q2), "p ≺ q2 still implied via v");
}

#[test]
fn rule_d_later_source_leaves_state_untouched() {
    // u -> q and v -> q; u ends up *after* v in thread 0.
    let (g, ids) = graph(3, &[(0, 1), (2, 1)]);
    let (u, q, v) = (ids[0], ids[1], ids[2]);
    let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(2)).unwrap();
    commit_into(&mut ts, u, 0, None);
    commit_into(&mut ts, q, 1, None);
    assert!(state_edge(&ts, u, q));
    commit_into(&mut ts, v, 0, None); // head of thread 0, before u
    assert!(state_edge(&ts, u, q), "edge u->q must survive");
    assert!(!state_edge(&ts, v, q), "no direct v->q; implied via u");
    assert!(state_before(&ts, v, q));
}

#[test]
fn rule_e_missing_edge_is_added() {
    // v -> q across threads, successor scheduled first.
    let (g, ids) = graph(2, &[(1, 0)]);
    let (q, v) = (ids[0], ids[1]);
    let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(2)).unwrap();
    commit_into(&mut ts, q, 1, None);
    commit_into(&mut ts, v, 0, None);
    assert!(state_edge(&ts, v, q), "rule (e): edge v->q added");
}

#[test]
fn rule_f_undershooting_edge_is_retargeted() {
    // u -> q and v -> q; v inserted *after* u in thread 0.
    let (g, ids) = graph(3, &[(0, 1), (2, 1)]);
    let (u, q, v) = (ids[0], ids[1], ids[2]);
    let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(2)).unwrap();
    commit_into(&mut ts, u, 0, None);
    commit_into(&mut ts, q, 1, None);
    assert!(state_edge(&ts, u, q));
    commit_into(&mut ts, v, 0, Some(u)); // after u
    assert!(state_edge(&ts, v, q), "rule (f): edge now from v");
    assert!(!state_edge(&ts, u, q), "old undershooting edge removed");
    assert!(state_before(&ts, u, q), "u ≺ q still implied via v");
}

#[test]
fn tight_edge_hygiene_two_ancestors_in_one_thread() {
    // p1 -> p2 -> v with p1, p2 in one thread: only the tighter edge
    // p2 -> v may exist, and the pointer structure stays symmetric
    // (the DESIGN.md §3 clarification).
    let (g, ids) = graph(3, &[(0, 1), (1, 2), (0, 2)]);
    let (p1, p2, v) = (ids[0], ids[1], ids[2]);
    let mut ts = ThreadedScheduler::new(g, ResourceSet::uniform(2)).unwrap();
    commit_into(&mut ts, p1, 0, None);
    commit_into(&mut ts, p2, 0, Some(p1));
    commit_into(&mut ts, v, 1, None);
    assert!(state_edge(&ts, p2, v), "tightest ancestor keeps the edge");
    assert!(!state_edge(&ts, p1, v), "looser ancestor is compressed away");
    assert!(state_before(&ts, p1, v));
}
