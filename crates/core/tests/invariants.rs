//! Property-based tests of the paper's definitions and theorems.
//!
//! Each property is stated against the formal framework of Section 3/4:
//! Definition 3 (correctness, incrementality), Definition 4
//! (threadedness), Lemma 4 (diameter monotonicity), Lemma 7 (degree
//! bound — via the internal invariant checker), Theorem 1 (the
//! implementation is a threaded schedule) and Theorem 2 (online
//! optimality against exhaustive speculation).

use hls_ir::{generate, OpId, PrecedenceGraph, ResourceClass, ResourceSet};
use proptest::prelude::*;
use threaded_sched::{
    meta::MetaSchedule,
    soft::{check_correctness, check_incremental, check_threaded},
    ThreadedScheduler,
};

fn workload(seed: u64, ops: usize) -> PrecedenceGraph {
    let cfg = generate::LayeredConfig {
        ops,
        width: (ops / 4).max(2),
        edge_prob: 0.35,
        mul_ratio: 0.35,
        ..generate::LayeredConfig::default()
    };
    generate::layered_dag(seed, &cfg)
}

fn resources(alus: usize, muls: usize) -> ResourceSet {
    ResourceSet::classic(alus, muls)
}

fn meta(idx: usize) -> MetaSchedule {
    match idx {
        0 => MetaSchedule::Dfs,
        1 => MetaSchedule::Topological,
        2 => MetaSchedule::PathBased,
        3 => MetaSchedule::ListBased,
        _ => MetaSchedule::Random(idx as u64),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1: along any meta order, the implementation maintains a
    /// correct, incremental, threaded state (Definitions 3 and 4), and
    /// the internal structure (pointer symmetry, chains, Lemma 7 degree
    /// bound, acyclicity) never breaks.
    #[test]
    fn theorem1_state_stays_a_threaded_schedule(
        seed in 0u64..1000,
        ops in 8usize..36,
        alus in 1usize..4,
        muls in 1usize..3,
        meta_idx in 0usize..6,
    ) {
        let g = workload(seed, ops);
        let r = resources(alus, muls);
        let order = meta(meta_idx).order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g.clone(), r).unwrap();
        let mut prev = ts.snapshot();
        for v in order {
            ts.schedule(v).unwrap();
            let snap = ts.snapshot();
            check_correctness(&g, &snap).unwrap();
            check_incremental(&prev, &snap).unwrap();
            check_threaded(&snap).unwrap();
            ts.check_invariants().unwrap();
            prev = snap;
        }
        prop_assert_eq!(ts.scheduled_count(), g.len());
    }

    /// Lemma 4: the state diameter is monotone along any run.
    #[test]
    fn lemma4_diameter_is_monotone(
        seed in 0u64..1000,
        ops in 8usize..48,
        meta_idx in 0usize..6,
    ) {
        let g = workload(seed, ops);
        let r = resources(2, 2);
        let order = meta(meta_idx).order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g, r).unwrap();
        let mut last = 0;
        for v in order {
            ts.schedule(v).unwrap();
            prop_assert!(ts.diameter() >= last);
            last = ts.diameter();
        }
    }

    /// Theorem 2: at every step, `select` reaches the minimal next-state
    /// diameter over all feasible placements (exhaustive speculation).
    #[test]
    fn theorem2_select_is_online_optimal(
        seed in 0u64..400,
        ops in 6usize..18,
        alus in 1usize..3,
        muls in 1usize..3,
        meta_idx in 0usize..6,
    ) {
        let g = workload(seed, ops);
        let r = resources(alus, muls);
        let order = meta(meta_idx).order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g, r).unwrap();
        for v in order {
            let best = ts
                .feasible_placements(v)
                .unwrap()
                .into_iter()
                .map(|p| {
                    let mut spec = ts.clone();
                    spec.commit(p, v);
                    spec.diameter()
                })
                .min()
                .unwrap();
            ts.schedule(v).unwrap();
            prop_assert_eq!(ts.diameter(), best);
        }
    }

    /// The extracted hard schedule is always complete, legal and exactly
    /// as long as the state diameter.
    #[test]
    fn extraction_is_always_legal(
        seed in 0u64..1000,
        ops in 8usize..40,
        alus in 1usize..4,
        muls in 1usize..3,
        meta_idx in 0usize..6,
    ) {
        let g = workload(seed, ops);
        let r = resources(alus, muls);
        let order = meta(meta_idx).order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g, r.clone()).unwrap();
        ts.schedule_all(order).unwrap();
        let hard = ts.extract_hard();
        hls_ir::schedule::validate(ts.graph(), &r, &hard).unwrap();
        prop_assert_eq!(hard.length(ts.graph()), ts.diameter());
    }

    /// Scheduling is idempotent (Definition 3: `v ∈ V_S → F(v,S) = S`).
    #[test]
    fn scheduling_twice_changes_nothing(
        seed in 0u64..500,
        ops in 4usize..24,
    ) {
        let g = workload(seed, ops);
        let r = resources(2, 2);
        let order = MetaSchedule::Topological.order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g, r).unwrap();
        ts.schedule_all(order.iter().copied()).unwrap();
        let d = ts.diameter();
        let n = ts.scheduled_count();
        for v in order {
            ts.schedule(v).unwrap();
        }
        prop_assert_eq!(ts.diameter(), d);
        prop_assert_eq!(ts.scheduled_count(), n);
    }

    /// Refinement splices keep every invariant and only ever lengthen
    /// the schedule by at most the inserted delay.
    #[test]
    fn refinement_is_safe_and_bounded(
        seed in 0u64..400,
        ops in 8usize..30,
        edge_pick in 0usize..64,
        wire_delay in 1u64..4,
    ) {
        let g = workload(seed, ops);
        let r = resources(2, 2).with(ResourceClass::MemPort, 1);
        let order = MetaSchedule::ListBased.order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g, r.clone()).unwrap();
        ts.schedule_all(order).unwrap();
        let before = ts.diameter();
        let edges: Vec<(OpId, OpId)> = ts.graph().edges().collect();
        prop_assume!(!edges.is_empty());
        let (u, w) = edges[edge_pick % edges.len()];
        let inserted = ts
            .refine_splice(
                u,
                w,
                [(hls_ir::OpKind::WireDelay, wire_delay, "wd".to_string())],
            )
            .unwrap();
        prop_assert_eq!(inserted.len(), 1);
        ts.check_invariants().unwrap();
        prop_assert!(ts.diameter() >= before);
        prop_assert!(ts.diameter() <= before + wire_delay);
        let hard = ts.extract_hard();
        hls_ir::schedule::validate(ts.graph(), &r, &hard).unwrap();
    }
}
