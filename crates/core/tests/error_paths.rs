//! Error-path coverage for [`SchedError`]: each failure mode must
//! surface as its *specific* variant (with the right payload), not
//! just "some error" — downstream tooling (the portfolio, the flow)
//! matches on these variants to decide what is retryable.

use hls_ir::{IrError, OpId, OpKind, PrecedenceGraph, ResourceSet};
use threaded_sched::meta::MetaSchedule;
use threaded_sched::{ModuloScheduler, SchedError, ThreadedScheduler};

fn cyclic_graph() -> PrecedenceGraph {
    let mut g = PrecedenceGraph::new();
    let a = g.add_op(OpKind::Add, 1, "a");
    let b = g.add_op(OpKind::Mul, 2, "b");
    let c = g.add_op(OpKind::Sub, 1, "c");
    g.add_edge(a, b).unwrap();
    g.add_edge(b, c).unwrap();
    g.add_edge(c, a).unwrap();
    g
}

#[test]
fn cyclic_graph_fed_to_the_acyclic_scheduler_reports_the_cycle() {
    let err = ThreadedScheduler::new(cyclic_graph(), ResourceSet::classic(1, 1))
        .expect_err("cycles must be rejected at construction");
    let SchedError::Ir(IrError::Cycle(v)) = err else {
        panic!("expected SchedError::Ir(IrError::Cycle(_)), got {err:?}");
    };
    assert!(v.index() < 3, "the reported vertex lies on the cycle");
    // Meta-order construction rejects the same graph the same way.
    let err = MetaSchedule::Topological
        .order(&cyclic_graph(), &ResourceSet::classic(1, 1))
        .expect_err("orders need a DAG");
    assert!(matches!(err, SchedError::Ir(IrError::Cycle(_))), "got {err:?}");
}

#[test]
fn empty_resource_set_reports_no_compatible_unit_with_the_op() {
    let mut g = PrecedenceGraph::new();
    let a = g.add_op(OpKind::Add, 1, "a");
    let mut ts = ThreadedScheduler::new(g, ResourceSet::new()).expect("construction is lazy");
    let err = ts.schedule(a).expect_err("no unit can run the add");
    assert_eq!(err, SchedError::NoCompatibleUnit(a, OpKind::Add));
    // The modulo scheduler rejects the allocation eagerly, naming the
    // first victim.
    let err = ModuloScheduler::new(
        hls_ir::bench_graphs::mac_loop(),
        ResourceSet::new(),
    )
    .expect_err("empty allocation");
    assert!(
        matches!(err, SchedError::NoCompatibleUnit(v, OpKind::Load) if v.index() == 0),
        "got {err:?}"
    );
}

#[test]
fn op_kind_without_a_capable_unit_is_named() {
    // 2 ALUs, no multiplier: the mul is the precise casualty.
    let mut g = PrecedenceGraph::new();
    let a = g.add_op(OpKind::Add, 1, "a");
    let m = g.add_op(OpKind::Mul, 2, "m");
    g.add_edge(a, m).unwrap();
    let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(2, 0)).unwrap();
    assert!(ts.schedule(a).is_ok(), "the add has a unit");
    let err = ts.schedule(m).expect_err("no multiplier allocated");
    assert_eq!(err, SchedError::NoCompatibleUnit(m, OpKind::Mul));
}

#[test]
fn out_of_range_op_reports_unknown_op() {
    let mut g = PrecedenceGraph::new();
    g.add_op(OpKind::Add, 1, "a");
    let mut ts = ThreadedScheduler::new(g, ResourceSet::classic(1, 0)).unwrap();
    let bogus = OpId::from_index(42);
    assert_eq!(ts.schedule(bogus), Err(SchedError::UnknownOp(bogus)));
    assert!(matches!(ts.select(bogus), Err(SchedError::UnknownOp(_))));
}

#[test]
fn distance_zero_cycle_is_rejected_by_the_modulo_scheduler_too() {
    // The modulo scheduler accepts loop-carried cycles but not
    // distance-0 ones — same variant as the acyclic path.
    let err = ModuloScheduler::new(cyclic_graph(), ResourceSet::classic(1, 1))
        .expect_err("distance-0 cycle is not a kernel");
    assert!(matches!(err, SchedError::Ir(IrError::Cycle(_))), "got {err:?}");
}

#[test]
fn infeasible_ii_reports_the_probed_interval() {
    let g = hls_ir::bench_graphs::mac_loop();
    let r = ResourceSet::classic(1, 1).with(hls_ir::ResourceClass::MemPort, 1);
    let sched = ModuloScheduler::new(g, r).unwrap();
    // Two loads on one port cannot fit II=1.
    assert_eq!(
        sched.schedule_at(1).expect_err("below ResMII"),
        SchedError::IiInfeasible(1)
    );
}
