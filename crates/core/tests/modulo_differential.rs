//! The cross-crate differential harness for modulo scheduling.
//!
//! `hls_ir::schedule::check_modulo` is a *cycle-accurate* checker: it
//! reads time modulo the II and must accept exactly the schedules
//! whose flat execution is legal. The oracle for "flat execution" is
//! the machinery this repo already trusts — unroll `k` iterations
//! ([`hls_ir::schedule::unroll`], `k` from
//! [`hls_ir::schedule::unroll_iterations`]) and run the acyclic
//! checker `hls_ir::schedule::validate` over the flat graph.
//!
//! Two fuzzed properties pin the agreement on ≥ 500 random cyclic
//! kernels per run:
//!
//! * every schedule the [`ModuloScheduler`] produces passes **both**
//!   checkers;
//! * on randomly *perturbed* schedules (starts nudged, units swapped,
//!   ops unassigned) the two checkers still agree — accept together or
//!   reject together — so neither is weaker than the other.

use hls_ir::schedule::{check_modulo, unroll, unroll_iterations, validate, ModuloSchedule};
use hls_ir::{generate, OpId, ResourceClass, ResourceSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use threaded_sched::{ModuloScheduler, SchedError};

/// The allocation grid the fuzz draws from (index by `alloc`).
fn allocation(alloc: usize) -> ResourceSet {
    match alloc % 4 {
        0 => ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 1),
        1 => ResourceSet::classic(2, 1).with(ResourceClass::MemPort, 1),
        2 => ResourceSet::classic(2, 2).with(ResourceClass::MemPort, 2),
        _ => ResourceSet::uniform(3),
    }
}

fn kernel(seed: u64, ops: usize, back_edges: usize, max_distance: u32) -> hls_ir::PrecedenceGraph {
    generate::cyclic_kernel(
        seed,
        &generate::CyclicConfig {
            ops,
            width: (ops / 3).max(2),
            back_edges,
            max_distance,
            ..generate::CyclicConfig::default()
        },
    )
}

/// Runs both checkers and asserts they agree; returns the shared
/// verdict.
fn checkers_agree(
    g: &hls_ir::PrecedenceGraph,
    r: &ResourceSet,
    ms: &ModuloSchedule,
    tag: &str,
) -> Result<bool, TestCaseError> {
    let modulo = check_modulo(g, r, ms);
    let iters = unroll_iterations(g, ms);
    let (flat, fs) = unroll(g, ms, iters);
    let oracle = validate(&flat, r, &fs);
    prop_assert_eq!(
        modulo.is_ok(),
        oracle.is_ok(),
        "[{}] checker {:?} vs oracle {:?} (unrolled {} iterations)",
        tag,
        modulo,
        oracle,
        iters
    );
    Ok(modulo.is_ok())
}

/// Nudges a schedule: move a start, swap a unit, or drop an
/// assignment. Returns how many mutations were applied.
fn perturb(ms: &mut ModuloSchedule, rng: &mut StdRng, n: usize, k: usize) -> usize {
    let count = rng.random_range(1usize..4);
    for _ in 0..count {
        let v = OpId::from_index(rng.random_range(0..n));
        match rng.random_range(0u32..4) {
            0 => {
                // Nudge the start by ±1..3.
                if let Some(s) = ms.start(v) {
                    let delta = rng.random_range(1u64..4);
                    let s = if rng.random_range(0..2u32) == 0 {
                        s.saturating_sub(delta)
                    } else {
                        s + delta
                    };
                    ms.assign(v, s, ms.unit(v));
                }
            }
            1 => {
                // Rebind to a random unit (possibly incompatible or
                // out of range).
                if let Some(s) = ms.start(v) {
                    ms.assign(v, s, Some(rng.random_range(0..k + 2)));
                }
            }
            2 => ms.unassign(v),
            _ => {
                // Collide: copy another op's start.
                let w = OpId::from_index(rng.random_range(0..n));
                if let (Some(sw), Some(_)) = (ms.start(w), ms.start(v)) {
                    ms.assign(v, sw, ms.unit(v));
                }
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Scheduler output is accepted by the checker AND the unrolled
    /// oracle, at the achieved II and at looser IIs.
    #[test]
    fn scheduler_output_agrees_with_unrolled_oracle(
        seed in 0u64..1_000_000,
        ops in 2usize..16,
        back_edges in 0usize..5,
        max_distance in 1u32..4,
        alloc in 0usize..4,
    ) {
        let g = kernel(seed, ops, back_edges, max_distance);
        let r = allocation(alloc);
        let sched = ModuloScheduler::new(g.clone(), r.clone()).expect("valid kernel");
        let out = sched.schedule().expect("well-formed kernels always schedule");
        prop_assert!(out.ii >= out.mii);
        let ok = checkers_agree(&g, &r, &out.schedule, "scheduler output")?;
        prop_assert!(ok, "scheduler output must be legal");
        // A strictly looser II (more slots, laxer recurrences) must
        // also succeed and agree.
        if let Ok(loose) = sched.schedule_at(out.ii + 3) {
            let ok = checkers_agree(&g, &r, &loose, "loose II")?;
            prop_assert!(ok);
        }
    }

    /// On randomly perturbed (usually broken) schedules, the checker
    /// and the unrolled oracle still agree.
    #[test]
    fn checker_agrees_with_oracle_on_perturbed_schedules(
        seed in 0u64..1_000_000,
        ops in 2usize..14,
        back_edges in 0usize..4,
        max_distance in 1u32..4,
        alloc in 0usize..4,
    ) {
        let g = kernel(seed, ops, back_edges, max_distance);
        let r = allocation(alloc);
        let sched = ModuloScheduler::new(g.clone(), r.clone()).expect("valid kernel");
        let out = sched.schedule().expect("well-formed kernels always schedule");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        for round in 0..3 {
            let mut ms = out.schedule.clone();
            perturb(&mut ms, &mut rng, g.len(), r.k());
            checkers_agree(&g, &r, &ms, &format!("perturbation {round}"))?;
        }
    }

    /// The certified MII is sound: no schedule exists below it. The
    /// scheduler itself must refuse (`IiInfeasible`), and for the
    /// recurrence component the checker must reject *any* complete
    /// assignment we can cook up at II = RecMII − 1.
    #[test]
    fn no_schedule_below_the_certified_bound(
        seed in 0u64..1_000_000,
        ops in 2usize..12,
        back_edges in 1usize..5,
        alloc in 0usize..4,
    ) {
        let g = kernel(seed, ops, back_edges, 2);
        let r = allocation(alloc);
        let sched = ModuloScheduler::new(g.clone(), r.clone()).expect("valid kernel");
        let mii = sched.mii();
        prop_assume!(mii > 1);
        let probe = mii - 1;
        match sched.schedule_at(probe) {
            Ok(ms) => {
                // The IMS budget is heuristic, but a *successful*
                // placement below the bound would disprove the bound:
                // it must never validate.
                let bad = check_modulo(&g, &r, &ms);
                prop_assert!(bad.is_err(), "schedule below MII validated: {:?}", bad);
            }
            Err(SchedError::IiInfeasible(ii)) => prop_assert_eq!(ii, probe),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }
}
