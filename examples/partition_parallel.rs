//! Partition-parallel scheduling: cut a big DFG into balanced blocks,
//! schedule the blocks on worker threads, stitch the seams — then
//! compare against the sequential engine.
//!
//! Run with:
//! `cargo run --release --example partition_parallel [workload] [workers]`
//! — any `hls_ir::load` spec (`stress:<seed>:<ops>`, a kernel name, a
//! `.dfg` file); the default is a 60k-op stress DAG.

use std::time::Instant;

use soft_hls::ir::{load, schedule, ResourceSet};
use soft_hls::sched::{
    meta::MetaSchedule, parallel::ParallelConfig, ParallelScheduler, ThreadedScheduler,
};

fn main() {
    let spec = std::env::args().nth(1).unwrap_or_else(|| "stress:7:60000".to_string());
    let workers = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let (name, g) = load::load_graph(&spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let resources = ResourceSet::classic(2, 2);
    println!("workload {name}: {} ops, {} edges, {resources}", g.len(), g.edge_count());

    // The sequential reference: one engine, one commit loop.
    let t0 = Instant::now();
    let order = MetaSchedule::Topological.order(&g, &resources).expect("DAG workloads only");
    let mut ts = ThreadedScheduler::new(g.clone(), resources.clone()).expect("valid graph");
    ts.schedule_all(order).expect("schedulable");
    let seq_ms = t0.elapsed().as_millis();
    println!("sequential: {} states in {seq_ms} ms", ts.diameter());

    // The partition-parallel engine: forced past the cutoff so the
    // partition path runs even for small demo workloads.
    let cfg = ParallelConfig { workers, sequential_cutoff: 0, ..ParallelConfig::default() };
    let t0 = Instant::now();
    let ps = ParallelScheduler::new(g.clone(), resources.clone(), cfg).expect("valid graph");
    let run = ps.run().expect("schedulable");
    let par_ms = t0.elapsed().as_millis();

    schedule::validate(&g, &resources, &run.schedule).expect("the stitch is always valid");
    println!(
        "parallel:   {} states in {par_ms} ms ({} blocks, {} cut edges, certified >= {})",
        run.diameter,
        ps.partition().parts(),
        run.cut_edges,
        run.lower_bound
    );
    println!(
        "speedup {:.2}x, quality {:+.2}% vs sequential",
        seq_ms as f64 / (par_ms.max(1)) as f64,
        100.0 * (run.diameter as f64 - ts.diameter() as f64) / ts.diameter() as f64
    );

    // A stitched run is a first-class engine state: materialise it and
    // the full incremental machinery (invariants, ECO) is live again.
    let live = ps.materialize(&run).expect("stitched runs materialise");
    live.check_invariants().expect("materialised state is coherent");
    println!("materialised back into a live scheduler: {} ops", live.scheduled_count());
}
