//! Loop pipelining: modulo-schedule the classic loop kernels, print
//! the certified MII, the achieved II and the steady-state kernel.
//!
//! Run with: `cargo run --example pipeline`

use soft_hls::ir::{bench_graphs, schedule, ResourceClass, ResourceSet};
use soft_hls::sched::{ModuloScheduler, SchedError};
use soft_hls::search::{run_modulo_portfolio, PipelineConfig};

fn main() -> Result<(), SchedError> {
    let resources = ResourceSet::classic(2, 2).with(ResourceClass::MemPort, 1);
    println!("resources: {resources}\n");

    for (name, g) in bench_graphs::loops() {
        // The kernel carries loop edges: `dist > 0` means "the value
        // from that many iterations ago".
        let carried = g.edges_dist().filter(|&(_, _, d)| d > 0).count();
        println!(
            "{name}: {} ops, {} edges ({carried} loop-carried)",
            g.len(),
            g.edge_count()
        );

        // Certified lower bound: resources vs recurrences.
        let sched = ModuloScheduler::new(g.clone(), resources.clone())?;
        println!(
            "  MII = max(ResMII {}, RecMII {}) = {}",
            sched.res_mii(),
            sched.rec_mii(),
            sched.mii()
        );

        // The modulo portfolio races meta placement orders per
        // candidate II behind one packed (II, latency) incumbent.
        let out = run_modulo_portfolio(&g, &resources, &PipelineConfig::default())?;
        schedule::check_modulo(&g, &resources, &out.schedule)
            .expect("the winner is cycle-accurately legal");
        println!(
            "  achieved II {} (gap {}), fill latency {}, winner {}",
            out.ii,
            out.ii - out.mii,
            out.latency,
            out.winner_name
        );

        // One iteration repeats every II steps; print iteration 0.
        let slice = out.schedule.iteration_slice();
        for v in g.op_ids() {
            let unit = match out.schedule.unit(v) {
                Some(u) => format!("unit {u}"),
                None => "wire".to_string(),
            };
            println!(
                "    t={:<3} slot={:<3} {:8} ({})",
                slice.start(v).expect("complete"),
                slice.start(v).expect("complete") % out.ii,
                g.label(v),
                unit
            );
        }
        println!();
    }
    Ok(())
}
