//! Threaded scheduling as a VLIW instruction scheduler.
//!
//! The paper's abstract: soft scheduling "has a potential to alleviate
//! the phase coupling problem that has plagued ... VLIW code
//! generation". The mapping: a K-issue VLIW machine is K uniform
//! threads; a compiler basic block is the precedence graph; the
//! register allocator's late spill code is absorbed by the soft
//! schedule instead of re-running the instruction scheduler.
//!
//! Run with: `cargo run --example vliw_schedule`

use soft_hls::ir::{DelayModel, ResourceClass, ResourceSet};
use soft_hls::lang::compile;
use soft_hls::sched::{meta::MetaSchedule, refine, SchedError, ThreadedScheduler};

// A compiler basic block: an unrolled dot-product step with an address
// computation — the bread and butter of VLIW kernels.
const BASIC_BLOCK: &str = "
    input a0, a1, a2, a3, b0, b1, b2, b3, acc, base;
    output sum, addr;
    p0 = a0 * b0;
    p1 = a1 * b1;
    p2 = a2 * b2;
    p3 = a3 * b3;
    s0 = p0 + p1;
    s1 = p2 + p3;
    s2 = s0 + s1;
    sum = acc + s2;
    addr = base + 16;
";

fn main() -> Result<(), SchedError> {
    // A 4-issue machine: slots accept any operation (like most VLIW
    // clusters), multiplies take 2 cycles, plus one memory port for
    // spill traffic.
    let machine = ResourceSet::uniform(4).with(ResourceClass::MemPort, 1);
    let block = compile(BASIC_BLOCK, &DelayModel::classic())
        .expect("the basic block is well-formed");
    println!(
        "basic block: {} ops ({} multiplies)",
        block.graph.len(),
        block
            .graph
            .op_ids()
            .filter(|&v| block.graph.kind(v) == soft_hls::ir::OpKind::Mul)
            .count()
    );

    let order = MetaSchedule::ListBased.order(&block.graph, &machine)?;
    let mut ts = ThreadedScheduler::new(block.graph, machine)?;
    ts.schedule_all(order)?;
    println!("VLIW schedule: {} cycles\n", ts.diameter());

    // Print the VLIW issue table: one column per slot.
    let hard = ts.extract_hard();
    let len = hard.length(ts.graph());
    for cycle in 0..len {
        let mut row: Vec<String> = Vec::new();
        for slot in 0..4 {
            let op = ts
                .graph()
                .op_ids()
                .find(|&v| hard.start(v) == Some(cycle) && hard.unit(v) == Some(slot));
            row.push(match op {
                Some(v) => format!("{:8}", ts.graph().label(v)),
                None => format!("{:8}", "nop"),
            });
        }
        println!("  cycle {cycle}: | {} |", row.join(" | "));
    }

    // The register allocator later decides p3 must spill around a call
    // site: the soft schedule absorbs the store/load pair in place.
    let p3 = ts
        .graph()
        .op_ids()
        .find(|&v| ts.graph().label(v).starts_with("p3"))
        .expect("p3 exists");
    let consumer = ts.graph().succs(p3)[0];
    let before = ts.diameter();
    refine::insert_spill(&mut ts, p3, consumer)?;
    println!(
        "\nafter spilling p3 around the call: {} cycles (was {}), no rescheduling run",
        ts.diameter(),
        before
    );
    ts.check_invariants().expect("state stays consistent");
    Ok(())
}
