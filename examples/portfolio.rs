//! Parallel portfolio scheduling + feedback-guided refinement: race the
//! paper's four meta schedules and seeded perturbations, then refine
//! the winner's critical cone.
//!
//! Run with: `cargo run --release --example portfolio`

use soft_hls::ir::{bench_graphs, generate, ResourceSet};
use soft_hls::search::{critical_cone, run_portfolio, PortfolioConfig};

fn show(name: &str, g: &soft_hls::ir::PrecedenceGraph, resources: &ResourceSet) {
    let cfg = PortfolioConfig::default();
    let out = match run_portfolio(g, resources, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("portfolio failed on {name}: {e}");
            std::process::exit(1);
        }
    };

    println!("== {name}: |V| = {}, {} strategies ==", g.len(), out.runs.len());
    for run in &out.runs {
        match run.diameter {
            Some(d) => println!("  {:<24} completed: {d} states", run.name),
            None => println!(
                "  {:<24} aborted after {} ops (could no longer win)",
                run.name, run.scheduled
            ),
        }
    }
    println!(
        "  winner: {} with {} states (pre-refinement {}, {} refinement round{})",
        out.winner_name,
        out.diameter,
        out.initial_diameter,
        out.refine_rounds,
        if out.refine_rounds == 1 { "" } else { "s" },
    );
    let cone = critical_cone(&out.winner, 0);
    println!(
        "  critical cone: {} of {} ops drive the diameter\n",
        cone.len(),
        g.len()
    );
}

fn main() {
    let resources = ResourceSet::classic(2, 2);
    for (name, g) in bench_graphs::all() {
        show(name, &g, &resources);
    }
    // A bigger randomized workload where the perturbation populations
    // genuinely earn their seats.
    let layered = generate::layered_dag(
        0xF0117,
        &generate::LayeredConfig {
            ops: 1500,
            width: 32,
            edge_prob: 0.2,
            ..generate::LayeredConfig::default()
        },
    );
    show("layered-1500", &layered, &resources);
}
