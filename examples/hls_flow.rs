//! End-to-end HLS: behavioral source -> soft schedule -> registers,
//! spills, φ resolution, placement, wire delays -> FSMD + RTL skeleton.
//!
//! Run with: `cargo run --example hls_flow`

use soft_hls::flow::{run_flow_source, FlowConfig};
use soft_hls::ir::{ResourceClass, ResourceSet};
use soft_hls::phys::WireModel;

const SOURCE: &str = "
    // One Euler step of y'' + 3xy' + 3y = 0 with a data-dependent
    // step-size clamp (gives the flow a phi to resolve).
    input x, dx, u, y, a;
    output x1, y1, u1, c;
    t1 = 3 * x;
    t2 = u * dx;
    t3 = 3 * y;
    t4 = t1 * t2;
    t5 = t3 * dx;
    s1 = u - t4;
    u1 = s1 - t5;
    if (u1 < u) { step = dx + 1; } else { step = dx; }
    y1 = y + u * step;
    x1 = x + step;
    c = x1 < a;
";

fn main() {
    let config = FlowConfig {
        resources: ResourceSet::classic(2, 2).with(ResourceClass::MemPort, 1),
        register_budget: Some(4), // tight: forces spill decisions
        wire_model: WireModel::new(2),
        grid: (3, 2),
        ..FlowConfig::default()
    };

    let outcome = match run_flow_source(SOURCE, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("flow failed: {e}");
            std::process::exit(1);
        }
    };

    let r = &outcome.report;
    println!("== soft-hls flow report ==");
    println!("initial soft schedule : {} states", r.initial_states);
    println!("spills absorbed       : {}", r.spills);
    println!("phis -> moves / void  : {} / {}", r.phis_to_moves, r.phis_voided);
    println!("wire delays absorbed  : {}", r.wire_delays);
    println!("final schedule        : {} states", r.final_states);
    println!("registers             : {}", r.registers);
    println!("placement wirelength  : {}", r.wirelength);

    println!("\n== floorplan ==");
    for u in 0..outcome.scheduler.resources().k() {
        let (x, y) = outcome.floorplan.position(u);
        let class = outcome
            .scheduler
            .resources()
            .class(u)
            .map_or("ANY".to_string(), |c| c.to_string());
        println!("  u{u} ({class}) at ({x},{y})");
    }

    println!("\n== RTL skeleton ==");
    println!(
        "{}",
        outcome.fsmd.to_verilog(outcome.scheduler.graph(), "euler_step")
    );
}
