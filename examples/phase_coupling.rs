//! The paper's Figure 1, line by line: how a soft schedule absorbs
//! spill code and wire delays that would invalidate a hard schedule.
//!
//! Run with: `cargo run --example phase_coupling`

use soft_hls::ir::{bench_graphs, OpKind, ResourceClass, ResourceSet};
use soft_hls::sched::{refine, SchedError, ThreadedScheduler};

fn build_fig1e() -> Result<(ThreadedScheduler, [soft_hls::ir::OpId; 7]), SchedError> {
    let f = bench_graphs::fig1();
    // Two universal FUs (the two threads of Figure 1(e)) plus a memory
    // port for spill code.
    let resources = ResourceSet::uniform(2).with(ResourceClass::MemPort, 1);
    let mut ts = ThreadedScheduler::new(f.graph, resources)?;
    // Reproduce the exact threads of the figure: {3,4,6,7} and {1,2,5}.
    for (op, thread) in [
        (f.v[2], 0),
        (f.v[3], 0),
        (f.v[5], 0),
        (f.v[6], 0),
        (f.v[0], 1),
        (f.v[1], 1),
        (f.v[4], 1),
    ] {
        let p = ts
            .feasible_placements(op)?
            .into_iter().rfind(|p| p.thread == thread)
            .expect("thread tail is always feasible");
        ts.commit(p, op);
    }
    Ok((ts, f.v))
}

fn main() -> Result<(), SchedError> {
    let (ts, v) = build_fig1e()?;
    println!("Figure 1(e): soft schedule of the 7-op dataflow graph");
    for k in 0..2 {
        let names: Vec<&str> = ts.chain(k).into_iter().map(|x| ts.graph().label(x)).collect();
        println!("  thread {k}: {}", names.join(" -> "));
    }
    println!("  diameter: {} states (paper: 5)\n", ts.diameter());

    // --- Scenario 1: register allocation spills vertex 3's value. ---
    let (mut spilled, _) = build_fig1e()?;
    let (st, ld) = refine::insert_spill(&mut spilled, v[2], v[3])?;
    println!("spill of value 3 (inserted {} and {}):", spilled.graph().label(st), spilled.graph().label(ld));
    println!("  soft refinement: {} states (paper: 6)", spilled.diameter());

    let (base, _) = build_fig1e()?;
    let patched = refine::patch_hard_splice(
        base.graph(),
        &base.extract_hard(),
        base.resources(),
        v[2],
        v[3],
        [
            (OpKind::Store, 1, "st".to_string()),
            (OpKind::Load, 1, "ld".to_string()),
        ],
    )?;
    println!(
        "  hard trivial fix: {} states (always pays the full delay)\n",
        patched.schedule.length(&patched.graph)
    );

    // --- Scenario 2: place & route finds a slow wire after vertex 3. ---
    let (mut wired, _) = build_fig1e()?;
    let wd = refine::insert_wire_delay(&mut wired, v[2], v[3], 1)?;
    println!("wire delay {} on edge 3 -> 4:", wired.graph().label(wd));
    println!("  soft refinement: {} states (paper: 5 — absorbed for free)", wired.diameter());
    let wire_patch = refine::patch_hard_splice(
        base.graph(),
        &base.extract_hard(),
        base.resources(),
        v[2],
        v[3],
        [(OpKind::WireDelay, 1, "wd".to_string())],
    )?;
    println!(
        "  hard trivial fix: {} states",
        wire_patch.schedule.length(&wire_patch.graph)
    );
    Ok(())
}
