//! Quickstart: softly schedule the HAL benchmark, inspect the threads,
//! extract the hard schedule.
//!
//! Run with: `cargo run --example quickstart [workload]` — any
//! `hls_ir::load` spec works (`ewf`, `stress:7:200`, `my.dfg`); the
//! default is the HAL differential-equation benchmark: 11 operations,
//! 6 of them multiplies, under 2 ALUs + 2 multipliers.

use soft_hls::ir::{load, schedule, ResourceSet};
use soft_hls::sched::{meta::MetaSchedule, SchedError, ThreadedScheduler};

fn main() -> Result<(), SchedError> {
    let spec = std::env::args().nth(1).unwrap_or_else(|| "hal".to_string());
    let (name, graph) = load::load_graph(&spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("workload: {name}");
    let resources = ResourceSet::classic(2, 2);
    println!("behavior: {} ops, {} edges", graph.len(), graph.edge_count());
    println!("resources: {resources}");

    // A procedural schedule = meta schedule (op order) + online schedule
    // (the threaded scheduler). Feed it the list-scheduling order.
    let order = MetaSchedule::ListBased.order(&graph, &resources)?;
    let mut ts = ThreadedScheduler::new(graph, resources.clone())?;
    for v in order {
        let placement = ts.schedule(v)?;
        println!(
            "  scheduled {:10} -> thread {} (cost {})",
            ts.graph().label(v),
            placement.thread,
            placement.cost
        );
    }
    println!("state diameter (control states): {}", ts.diameter());

    // The soft state keeps one totally-ordered chain per functional unit.
    for k in 0..ts.thread_count() {
        let names: Vec<&str> = ts.chain(k).into_iter().map(|v| ts.graph().label(v)).collect();
        println!("  thread {k}: {}", names.join(" -> "));
    }

    // The hard decision — op -> step — is extracted only at the end.
    let hard = ts.extract_hard();
    schedule::validate(ts.graph(), &resources, &hard).expect("extraction is always legal");
    println!("\nfinal hard schedule:\n{}", schedule::format_steps(ts.graph(), &hard));
    Ok(())
}
