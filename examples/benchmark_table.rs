//! Regenerates the paper's Figure 3 benchmark table from the public API
//! (the `hls-bench` crate wraps the same experiment for the harness).
//!
//! Run with: `cargo run --example benchmark_table [workload]` — any
//! `hls_ir::load` spec; the default `all` is the paper's four kernels.

use soft_hls::baselines::{list_schedule, Priority};
use soft_hls::ir::{load, ResourceSet};
use soft_hls::sched::{meta::MetaSchedule, SchedError, ThreadedScheduler};

fn main() -> Result<(), SchedError> {
    let spec = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let suite = load::load_suite(&spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let configs = [
        ("2+/-,2*", ResourceSet::classic(2, 2)),
        ("4+/-,4*", ResourceSet::classic(4, 4)),
        ("2+/-,1*", ResourceSet::classic(2, 1)),
    ];
    println!("{:4} {:12} {:>9} {:>9} {:>9}", "BM", "Sched. Alg.", configs[0].0, configs[1].0, configs[2].0);
    for (name, g) in suite {
        for meta in MetaSchedule::PAPER {
            let mut lengths = Vec::new();
            for (_, resources) in &configs {
                let order = meta.order(&g, resources)?;
                let mut ts = ThreadedScheduler::new(g.clone(), resources.clone())?;
                ts.schedule_all(order)?;
                lengths.push(ts.diameter());
            }
            println!(
                "{:4} {:12} {:>9} {:>9} {:>9}",
                name,
                meta.name(),
                lengths[0],
                lengths[1],
                lengths[2]
            );
        }
        let list: Vec<u64> = configs
            .iter()
            .map(|(_, r)| {
                list_schedule(&g, r, Priority::CriticalPath)
                    .expect("benchmarks schedule under all configs")
                    .length(&g)
            })
            .collect();
        println!(
            "{:4} {:12} {:>9} {:>9} {:>9}",
            name, "list sched", list[0], list[1], list[2]
        );
    }
    Ok(())
}
