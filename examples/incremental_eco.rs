//! Engineering-change-order (ECO) stream: the soft schedule as a living
//! artifact.
//!
//! The paper's conclusion: the threaded kernel "can be embedded into
//! other algorithms which need to ... incrementally change the
//! schedule". This example drives a scheduled elliptic-filter design
//! through a stream of late changes — extra operations, spills, wire
//! delays — and shows the state absorbing each one while staying
//! online-optimal, versus rescheduling from scratch each time.
//!
//! Run with: `cargo run --example incremental_eco`

use soft_hls::baselines::{list_schedule, Priority};
use soft_hls::ir::{bench_graphs, OpKind, ResourceClass, ResourceSet};
use soft_hls::sched::{meta::MetaSchedule, refine, SchedError, ThreadedScheduler};

fn main() -> Result<(), SchedError> {
    let g = bench_graphs::ewf();
    let resources = ResourceSet::classic(2, 1).with(ResourceClass::MemPort, 1);
    let order = MetaSchedule::ListBased.order(&g, &resources)?;
    let mut ts = ThreadedScheduler::new(g, resources.clone())?;
    ts.schedule_all(order)?;
    println!("elliptic filter scheduled: {} states\n", ts.diameter());

    // A stream of late engineering changes.
    let edges: Vec<_> = ts.graph().edges().take(40).collect();
    type Change = Box<dyn Fn(&mut ThreadedScheduler) -> Result<(), SchedError>>;
    let changes: Vec<(&str, Change)> = vec![
        (
            "spill a hot value",
            Box::new({
                let e = edges[3];
                move |ts| refine::insert_spill(ts, e.0, e.1).map(|_| ())
            }),
        ),
        (
            "wire delay on a long route",
            Box::new({
                let e = edges[10];
                move |ts| refine::insert_wire_delay(ts, e.0, e.1, 1).map(|_| ())
            }),
        ),
        (
            "add a debug checksum add",
            Box::new(|ts| {
                let taps: Vec<_> = ts.graph().sinks().into_iter().take(2).collect();
                ts.refine_add_op(OpKind::Add, 1, "eco_checksum", &taps, &[])
                    .map(|_| ())
            }),
        ),
        (
            "spill another value",
            Box::new({
                let e = edges[17];
                move |ts| refine::insert_spill(ts, e.0, e.1).map(|_| ())
            }),
        ),
        (
            "second wire delay",
            Box::new({
                let e = edges[25];
                move |ts| refine::insert_wire_delay(ts, e.0, e.1, 2).map(|_| ())
            }),
        ),
    ];

    for (what, apply) in changes {
        apply(&mut ts)?;
        ts.check_invariants().expect("state stays consistent");
        // The alternative: throw the schedule away and rerun list
        // scheduling on the grown behavior.
        let rescheduled = list_schedule(ts.graph(), &resources, Priority::CriticalPath)
            .expect("behavior stays schedulable")
            .length(ts.graph());
        println!(
            "{what:28} -> soft: {:3} states   (reschedule from scratch: {:3})",
            ts.diameter(),
            rescheduled
        );
    }

    // Final validation gates the exit status: an invalid schedule
    // must fail the run (and CI), not print `false` and exit 0.
    if let Err(e) =
        soft_hls::ir::schedule::validate(ts.graph(), &resources, &ts.extract_hard())
    {
        eprintln!("error: final schedule failed validation: {e}");
        std::process::exit(1);
    }
    println!(
        "\nfinal behavior: {} ops across {} threads; schedule validated",
        ts.graph().len(),
        ts.thread_count(),
    );
    Ok(())
}
